//! The typing rules for values (Definition 3.6) and the
//! soundness/completeness theorems (Theorems 3.1 and 3.2).

use tchimera_temporal::{Instant, Interval};

use crate::database::Database;
use crate::error::{ModelError, Result};
use crate::types::Type;
use crate::value::Value;

impl Database {
    /// Infer the *principal* type of a value at instant `at`, following
    /// the typing rules of Definition 3.6:
    ///
    /// * basic values type to their basic type; time values to `time`;
    /// * an oid types to its most specific class at `at` (the rule
    ///   `i ∈ π(c, t) ⊢ i : c` admits every class the object is a member
    ///   of; the most specific one is the principal choice, from which all
    ///   others follow by subsumption);
    /// * sets and lists type to `set-of(⊔ᵢ Tᵢ)` / `list-of(⊔ᵢ Tᵢ)`, the
    ///   least upper bound of the element types in the `≤_T` poset —
    ///   [`ModelError::NoLub`] if none exists;
    /// * records type field-wise;
    /// * histories type to `temporal(⊔ᵢ Tᵢ)` over their run values, each
    ///   run typed *over its own interval* (an oid run is typed by the most
    ///   specific class containing the object throughout the run).
    ///
    /// Returns `Ok(None)` when the value has no principal type: `null` is
    /// a value of *every* type (first rule of Definition 3.6), and empty
    /// collections/histories are values of `set-of(T)`/… for every `T`.
    /// Membership of such values in any candidate type is checkable with
    /// [`Database::value_in_type`].
    ///
    /// **Theorem 3.1 (soundness)** holds as: if `infer_type(v, t)` returns
    /// `Some(T)`, then `value_in_type(v, T, t)`. **Theorem 3.2
    /// (completeness)** holds as: if `v ∈ [[T]]_t` then inference yields
    /// either `None` (the null/empty cases, values of every type) or some
    /// `T'` with `T' ≤_T T`. Both are exercised as property tests in
    /// `tests/typing_theorems.rs`.
    pub fn infer_type(&self, v: &Value, at: Instant) -> Result<Option<Type>> {
        self.infer_type_over(v, Interval::point(at))
    }

    fn infer_type_over(&self, v: &Value, iv: Interval) -> Result<Option<Type>> {
        let now = self.now();
        Ok(match v {
            Value::Null => None,
            Value::Int(_) | Value::Real(_) | Value::Bool(_) | Value::Char(_) | Value::Str(_) => {
                Some(Type::Basic(v.basic_type().expect("basic")))
            }
            Value::Time(_) => Some(Type::Time),
            Value::Oid(i) => {
                let o = self.object(*i)?;
                // Most specific class covering the whole interval: the lub
                // of the most specific classes over the run.
                let mut acc: Option<crate::ident::ClassId> = None;
                for e in o.class_history.entries() {
                    let run = e.interval(now).intersect(iv);
                    if run.is_empty() {
                        continue;
                    }
                    acc = Some(match acc {
                        None => e.value.clone(),
                        Some(c) => self.schema().lub_class(&c, &e.value).ok_or_else(|| {
                            ModelError::NoLub {
                                left: Type::Object(c.clone()),
                                right: Type::Object(e.value.clone()),
                            }
                        })?,
                    });
                }
                // The object must be alive throughout `iv`.
                let covered = o.class_history.domain(now);
                if !tchimera_temporal::IntervalSet::from(iv).is_subset(&covered) {
                    return Err(ModelError::NotInLifespan {
                        at: iv.lo().unwrap_or(Instant::ZERO),
                    });
                }
                acc.map(Type::Object)
            }
            Value::Set(xs) => self
                .infer_elems(xs, iv)?
                .map(Type::set_of),
            Value::List(xs) => self
                .infer_elems(xs, iv)?
                .map(Type::list_of),
            Value::Record(fs) => {
                let mut fields = Vec::with_capacity(fs.len());
                for (n, fv) in fs {
                    match self.infer_type_over(fv, iv)? {
                        Some(t) => fields.push((n.clone(), t)),
                        None => return Ok(None),
                    }
                }
                Some(Type::Record(fields))
            }
            Value::Temporal(h) => {
                let mut acc: Option<Type> = None;
                for e in h.entries() {
                    let run = e.interval(now);
                    if run.is_empty() {
                        continue;
                    }
                    let Some(t) = self.infer_type_over(&e.value, run)? else {
                        continue;
                    };
                    acc = Some(match acc {
                        None => t,
                        Some(prev) => {
                            self.schema().lub(&prev, &t).ok_or(ModelError::NoLub {
                                left: prev,
                                right: t,
                            })?
                        }
                    });
                }
                acc.map(Type::temporal)
            }
        })
    }

    fn infer_elems(&self, xs: &[Value], iv: Interval) -> Result<Option<Type>> {
        let mut acc: Option<Type> = None;
        for x in xs {
            let Some(t) = self.infer_type_over(x, iv)? else {
                continue;
            };
            acc = Some(match acc {
                None => t,
                Some(prev) => self.schema().lub(&prev, &t).ok_or(ModelError::NoLub {
                    left: prev,
                    right: t,
                })?,
            });
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassDef;
    use crate::database::{attrs, Attrs};
    use crate::ident::{ClassId, Oid};
    use tchimera_temporal::TemporalValue;

    fn db() -> (Database, Oid, Oid, Oid) {
        let mut db = Database::new();
        db.define_class(ClassDef::new("person")).unwrap();
        db.define_class(ClassDef::new("employee").isa("person")).unwrap();
        db.define_class(ClassDef::new("student").isa("person")).unwrap();
        db.advance_to(Instant(10)).unwrap();
        let p = db
            .create_object(&ClassId::from("person"), Attrs::new())
            .unwrap();
        let e = db
            .create_object(&ClassId::from("employee"), Attrs::new())
            .unwrap();
        let s = db
            .create_object(&ClassId::from("student"), Attrs::new())
            .unwrap();
        db.advance_to(Instant(100)).unwrap();
        (db, p, e, s)
    }

    #[test]
    fn basic_inference() {
        let (db, ..) = db();
        let t = Instant(50);
        assert_eq!(db.infer_type(&Value::Int(3), t).unwrap(), Some(Type::INTEGER));
        assert_eq!(db.infer_type(&Value::Real(1.0), t).unwrap(), Some(Type::REAL));
        assert_eq!(
            db.infer_type(&Value::Time(Instant(3)), t).unwrap(),
            Some(Type::Time)
        );
        assert_eq!(db.infer_type(&Value::Null, t).unwrap(), None);
    }

    #[test]
    fn oid_types_to_most_specific_class() {
        let (db, p, e, _) = db();
        let t = Instant(50);
        assert_eq!(
            db.infer_type(&Value::Oid(e), t).unwrap(),
            Some(Type::object("employee"))
        );
        assert_eq!(
            db.infer_type(&Value::Oid(p), t).unwrap(),
            Some(Type::object("person"))
        );
        // Outside the lifespan: no typing derivation exists.
        assert!(db.infer_type(&Value::Oid(e), Instant(5)).is_err());
    }

    #[test]
    fn heterogeneous_sets_take_the_lub() {
        let (db, _, e, s) = db();
        let t = Instant(50);
        let v = Value::set([Value::Oid(e), Value::Oid(s)]);
        assert_eq!(
            db.infer_type(&v, t).unwrap(),
            Some(Type::set_of(Type::object("person")))
        );
        // Mixed basic types have no lub.
        let bad = Value::set([Value::Int(1), Value::str("x")]);
        assert!(matches!(
            db.infer_type(&bad, t),
            Err(ModelError::NoLub { .. })
        ));
        // Null elements are skipped (they fit any type).
        let with_null = Value::set([Value::Null, Value::Int(1)]);
        assert_eq!(
            db.infer_type(&with_null, t).unwrap(),
            Some(Type::set_of(Type::INTEGER))
        );
        // Fully-null set: no principal type.
        assert_eq!(db.infer_type(&Value::set([Value::Null]), t).unwrap(), None);
        assert_eq!(db.infer_type(&Value::set([]), t).unwrap(), None);
    }

    #[test]
    fn record_inference() {
        let (db, _, e, _) = db();
        let t = Instant(50);
        let v = Value::record([("who", Value::Oid(e)), ("n", Value::Int(1))]);
        assert_eq!(
            db.infer_type(&v, t).unwrap(),
            Some(Type::record_of([
                ("who", Type::object("employee")),
                ("n", Type::INTEGER)
            ]))
        );
        let with_null = Value::record([("a", Value::Null)]);
        assert_eq!(db.infer_type(&with_null, t).unwrap(), None);
    }

    #[test]
    fn temporal_inference_types_runs_over_their_intervals() {
        let (db, _, e, s) = db();
        let t = Instant(50);
        let h = TemporalValue::from_pairs([
            (Interval::from_ticks(10, 20), Value::Oid(e)),
            (Interval::from_ticks(21, 30), Value::Oid(s)),
        ])
        .unwrap();
        assert_eq!(
            db.infer_type(&Value::Temporal(h), t).unwrap(),
            Some(Type::temporal(Type::object("person")))
        );
        let ints = TemporalValue::from_pairs([
            (Interval::from_ticks(10, 20), Value::Int(1)),
        ])
        .unwrap();
        assert_eq!(
            db.infer_type(&Value::Temporal(ints), t).unwrap(),
            Some(Type::temporal(Type::INTEGER))
        );
        assert_eq!(
            db.infer_type(&Value::Temporal(TemporalValue::new()), t).unwrap(),
            None
        );
    }

    #[test]
    fn migrating_object_types_by_run_coverage() {
        // An oid run spanning a migration types to the lub of the classes
        // it passed through.
        let mut db = Database::new();
        db.define_class(ClassDef::new("person")).unwrap();
        db.define_class(ClassDef::new("employee").isa("person")).unwrap();
        db.advance_to(Instant(10)).unwrap();
        let i = db
            .create_object(&ClassId::from("employee"), Attrs::new())
            .unwrap();
        db.advance_to(Instant(50)).unwrap();
        db.migrate(i, &ClassId::from("person"), attrs::<&str, _>([]))
            .unwrap();
        db.advance_to(Instant(100)).unwrap();
        // Over [20,30] it was an employee.
        let h1 = TemporalValue::from_pairs([(Interval::from_ticks(20, 30), Value::Oid(i))])
            .unwrap();
        assert_eq!(
            db.infer_type(&Value::Temporal(h1), db.now()).unwrap(),
            Some(Type::temporal(Type::object("employee")))
        );
        // Over [20,60] it migrated: lub is person.
        let h2 = TemporalValue::from_pairs([(Interval::from_ticks(20, 60), Value::Oid(i))])
            .unwrap();
        assert_eq!(
            db.infer_type(&Value::Temporal(h2), db.now()).unwrap(),
            Some(Type::temporal(Type::object("person")))
        );
    }

    #[test]
    fn soundness_spot_checks() {
        // Theorem 3.1: inferred types contain their values.
        let (db, p, e, s) = db();
        let t = Instant(50);
        for v in [
            Value::Int(1),
            Value::Oid(e),
            Value::set([Value::Oid(e), Value::Oid(s), Value::Oid(p)]),
            Value::record([("a", Value::list([Value::Int(1), Value::Int(2)]))]),
        ] {
            let ty = db.infer_type(&v, t).unwrap().expect("principal type");
            assert!(db.value_in_type(&v, &ty, t), "soundness failed for {v}");
        }
    }
}
