//! Temporal integrity constraints.
//!
//! The paper's future-work list (Section 7) calls for "a temporal integrity
//! constraint language … [to] express constraints based on past histories
//! of objects". This module provides a small, closed constraint algebra
//! over attribute histories, evaluated against the extent of a class.

use std::fmt;

use tchimera_temporal::{Instant, IntervalSet};

use crate::database::Database;
use crate::ident::{AttrName, ClassId, Oid};
use crate::value::Value;

/// Temporal quantification over an object's membership period.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quantifier {
    /// The condition must hold at every instant of the membership period.
    Always,
    /// The condition must hold at some instant of the membership period.
    Sometime,
}

/// A temporal integrity constraint over the members of a class.
#[derive(Clone, PartialEq, Debug)]
pub enum Constraint {
    /// The (temporal) attribute must be defined at every instant of the
    /// object's membership in the class.
    Covered {
        /// The constrained class.
        class: ClassId,
        /// The attribute.
        attr: AttrName,
    },
    /// The history of the attribute must be non-decreasing over time
    /// (e.g. a salary that can only grow).
    NonDecreasing {
        /// The constrained class.
        class: ClassId,
        /// The attribute.
        attr: AttrName,
    },
    /// The attribute must be constant over the object's lifetime — the
    /// paper's *immutable* attribute expressed as a history constraint
    /// ("their value is a constant function", Section 1.1).
    ConstantHistory {
        /// The constrained class.
        class: ClassId,
        /// The attribute.
        attr: AttrName,
    },
    /// The attribute value must lie within `[min, max]` (inclusive, by the
    /// total value order), always or at some time.
    InRange {
        /// The constrained class.
        class: ClassId,
        /// The attribute.
        attr: AttrName,
        /// Lower bound.
        min: Value,
        /// Upper bound.
        max: Value,
        /// Temporal quantifier.
        quantifier: Quantifier,
    },
    /// The attribute must never hold `null` while the object is a member.
    NeverNull {
        /// The constrained class.
        class: ClassId,
        /// The attribute.
        attr: AttrName,
    },
}

impl Constraint {
    /// The class the constraint ranges over.
    pub fn class(&self) -> &ClassId {
        match self {
            Constraint::Covered { class, .. }
            | Constraint::NonDecreasing { class, .. }
            | Constraint::ConstantHistory { class, .. }
            | Constraint::InRange { class, .. }
            | Constraint::NeverNull { class, .. } => class,
        }
    }

    /// The attribute the constraint ranges over.
    pub fn attr(&self) -> &AttrName {
        match self {
            Constraint::Covered { attr, .. }
            | Constraint::NonDecreasing { attr, .. }
            | Constraint::ConstantHistory { attr, .. }
            | Constraint::InRange { attr, .. }
            | Constraint::NeverNull { attr, .. } => attr,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Covered { class, attr } => {
                write!(f, "covered({class}.{attr})")
            }
            Constraint::NonDecreasing { class, attr } => {
                write!(f, "non-decreasing({class}.{attr})")
            }
            Constraint::ConstantHistory { class, attr } => {
                write!(f, "constant({class}.{attr})")
            }
            Constraint::InRange {
                class,
                attr,
                min,
                max,
                quantifier,
            } => {
                let q = match quantifier {
                    Quantifier::Always => "always",
                    Quantifier::Sometime => "sometime",
                };
                write!(f, "{q} {min} <= {class}.{attr} <= {max}")
            }
            Constraint::NeverNull { class, attr } => {
                write!(f, "never-null({class}.{attr})")
            }
        }
    }
}

/// A violation of a temporal integrity constraint by one object.
#[derive(Clone, PartialEq, Debug)]
pub struct ConstraintViolation {
    /// The violating object.
    pub oid: Oid,
    /// A rendering of the violated constraint.
    pub constraint: String,
    /// A witness instant where the violation manifests (when applicable).
    pub at: Option<Instant>,
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(t) => write!(f, "{} violates {} at {t}", self.oid, self.constraint),
            None => write!(f, "{} violates {}", self.oid, self.constraint),
        }
    }
}

impl Database {
    /// Evaluate a constraint against every object that has ever been a
    /// member of its class, returning all violations.
    pub fn check_constraint(&self, c: &Constraint) -> Vec<ConstraintViolation> {
        let now = self.now();
        let mut out = Vec::new();
        let Ok(class) = self.schema().class(c.class()) else {
            return out;
        };
        let members: Vec<Oid> = class.ever_members().collect();
        for oid in members {
            let membership = class.membership_of(oid, now);
            let Ok(o) = self.object(oid) else { continue };
            let history = o.attr(c.attr()).and_then(Value::as_temporal);
            match c {
                Constraint::Covered { .. } => {
                    let covered = history.map(|h| h.domain(now)).unwrap_or_default();
                    let missing = membership.difference(&covered);
                    if let Some(t) = missing.min() {
                        out.push(ConstraintViolation {
                            oid,
                            constraint: c.to_string(),
                            at: Some(t),
                        });
                    }
                }
                Constraint::NonDecreasing { .. } => {
                    if let Some(h) = history {
                        let runs = h.resolved_pairs(now);
                        for w in runs.windows(2) {
                            if w[1].1 < w[0].1 {
                                out.push(ConstraintViolation {
                                    oid,
                                    constraint: c.to_string(),
                                    at: w[1].0.lo(),
                                });
                                break;
                            }
                        }
                    }
                }
                Constraint::ConstantHistory { .. } => {
                    if let Some(h) = history {
                        let runs = h.resolved_pairs(now);
                        if let Some(first) = runs.first() {
                            if let Some(bad) = runs.iter().find(|(_, v)| *v != first.1) {
                                out.push(ConstraintViolation {
                                    oid,
                                    constraint: c.to_string(),
                                    at: bad.0.lo(),
                                });
                            }
                        }
                    } else if let Some(_v) = o.attr(c.attr()) {
                        // Static attribute: constancy over time is not
                        // checkable (the past is not recorded); treated as
                        // satisfied.
                    }
                }
                Constraint::InRange {
                    min,
                    max,
                    quantifier,
                    ..
                } => {
                    let in_range = |v: &Value| !v.is_null() && min <= v && v <= max;
                    match history {
                        Some(h) => {
                            let relevant: Vec<(tchimera_temporal::Interval, &Value)> = h
                                .resolved_pairs(now)
                                .into_iter()
                                .filter(|(iv, _)| {
                                    !IntervalSet::from(*iv)
                                        .intersection(&membership)
                                        .is_empty()
                                })
                                .collect();
                            match quantifier {
                                Quantifier::Always => {
                                    if let Some((iv, _)) =
                                        relevant.iter().find(|(_, v)| !in_range(v))
                                    {
                                        out.push(ConstraintViolation {
                                            oid,
                                            constraint: c.to_string(),
                                            at: iv.lo(),
                                        });
                                    }
                                }
                                Quantifier::Sometime => {
                                    if !relevant.iter().any(|(_, v)| in_range(v)) {
                                        out.push(ConstraintViolation {
                                            oid,
                                            constraint: c.to_string(),
                                            at: None,
                                        });
                                    }
                                }
                            }
                        }
                        None => {
                            // Static attribute: only the current value is
                            // examinable.
                            let current = o.attr(c.attr()).cloned().unwrap_or(Value::Null);
                            let ok = in_range(&current);
                            let violated = match quantifier {
                                Quantifier::Always => !ok,
                                Quantifier::Sometime => !ok,
                            };
                            if violated && membership.contains(now) {
                                out.push(ConstraintViolation {
                                    oid,
                                    constraint: c.to_string(),
                                    at: Some(now),
                                });
                            }
                        }
                    }
                }
                Constraint::NeverNull { .. } => match history {
                    Some(h) => {
                        if let Some(e) = h
                            .entries()
                            .iter()
                            .find(|e| e.value.is_null() && !e.interval(now).is_empty())
                        {
                            out.push(ConstraintViolation {
                                oid,
                                constraint: c.to_string(),
                                at: Some(e.start),
                            });
                        } else {
                            let covered = h.domain(now);
                            let missing = membership.difference(&covered);
                            if let Some(t) = missing.min() {
                                out.push(ConstraintViolation {
                                    oid,
                                    constraint: c.to_string(),
                                    at: Some(t),
                                });
                            }
                        }
                    }
                    None => {
                        let current = o.attr(c.attr()).cloned().unwrap_or(Value::Null);
                        if current.is_null() && membership.contains(now) {
                            out.push(ConstraintViolation {
                                oid,
                                constraint: c.to_string(),
                                at: Some(now),
                            });
                        }
                    }
                },
            }
        }
        out
    }

    /// Evaluate many constraints, concatenating violations.
    pub fn check_constraints(&self, cs: &[Constraint]) -> Vec<ConstraintViolation> {
        cs.iter().flat_map(|c| self.check_constraint(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassDef;
    use crate::database::attrs;
    use crate::types::Type;

    fn db() -> (Database, Oid) {
        let mut db = Database::new();
        db.define_class(
            ClassDef::new("employee")
                .attr("salary", Type::temporal(Type::INTEGER))
                .attr("grade", Type::INTEGER),
        )
        .unwrap();
        let i = db
            .create_object(
                &ClassId::from("employee"),
                attrs([("salary", Value::Int(100)), ("grade", Value::Int(1))]),
            )
            .unwrap();
        (db, i)
    }

    #[test]
    fn non_decreasing_salary() {
        let (mut db, i) = db();
        let c = Constraint::NonDecreasing {
            class: ClassId::from("employee"),
            attr: AttrName::from("salary"),
        };
        db.tick_by(10);
        db.set_attr(i, &"salary".into(), Value::Int(150)).unwrap();
        assert!(db.check_constraint(&c).is_empty());
        db.tick_by(10);
        db.set_attr(i, &"salary".into(), Value::Int(90)).unwrap();
        let v = db.check_constraint(&c);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].oid, i);
        assert_eq!(v[0].at, Some(Instant(20)));
        assert!(v[0].to_string().contains("non-decreasing"));
    }

    #[test]
    fn constant_history() {
        let (mut db, i) = db();
        let c = Constraint::ConstantHistory {
            class: ClassId::from("employee"),
            attr: AttrName::from("salary"),
        };
        assert!(db.check_constraint(&c).is_empty());
        db.tick_by(5);
        db.set_attr(i, &"salary".into(), Value::Int(101)).unwrap();
        assert_eq!(db.check_constraint(&c).len(), 1);
    }

    #[test]
    fn in_range_always_and_sometime() {
        let (mut db, i) = db();
        let always = Constraint::InRange {
            class: ClassId::from("employee"),
            attr: AttrName::from("salary"),
            min: Value::Int(50),
            max: Value::Int(200),
            quantifier: Quantifier::Always,
        };
        let sometime_high = Constraint::InRange {
            class: ClassId::from("employee"),
            attr: AttrName::from("salary"),
            min: Value::Int(500),
            max: Value::Int(1000),
            quantifier: Quantifier::Sometime,
        };
        assert!(db.check_constraint(&always).is_empty());
        assert_eq!(db.check_constraint(&sometime_high).len(), 1);
        db.tick_by(5);
        db.set_attr(i, &"salary".into(), Value::Int(600)).unwrap();
        assert!(db.check_constraint(&sometime_high).is_empty());
        db.tick_by(5);
        db.set_attr(i, &"salary".into(), Value::Int(10)).unwrap();
        let v = db.check_constraint(&always);
        assert_eq!(v.len(), 1);
        // The first out-of-range run is the 600 at t=5 (a violation too).
        assert_eq!(v[0].at, Some(Instant(5)));
    }

    #[test]
    fn never_null_and_covered() {
        let (mut db, i) = db();
        let nn = Constraint::NeverNull {
            class: ClassId::from("employee"),
            attr: AttrName::from("salary"),
        };
        let cov = Constraint::Covered {
            class: ClassId::from("employee"),
            attr: AttrName::from("salary"),
        };
        assert!(db.check_constraint(&nn).is_empty());
        assert!(db.check_constraint(&cov).is_empty());
        db.tick_by(5);
        db.set_attr(i, &"salary".into(), Value::Null).unwrap();
        assert_eq!(db.check_constraint(&nn).len(), 1);
        // Static attribute variant.
        let nn_static = Constraint::NeverNull {
            class: ClassId::from("employee"),
            attr: AttrName::from("grade"),
        };
        assert!(db.check_constraint(&nn_static).is_empty());
        db.set_attr(i, &"grade".into(), Value::Null).unwrap();
        assert_eq!(db.check_constraint(&nn_static).len(), 1);
    }

    #[test]
    fn check_constraints_batches() {
        let (mut db, i) = db();
        db.tick_by(5);
        db.set_attr(i, &"salary".into(), Value::Int(50)).unwrap();
        let cs = vec![
            Constraint::NonDecreasing {
                class: ClassId::from("employee"),
                attr: AttrName::from("salary"),
            },
            Constraint::ConstantHistory {
                class: ClassId::from("employee"),
                attr: AttrName::from("salary"),
            },
        ];
        let v = db.check_constraints(&cs);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn unknown_class_yields_no_violations() {
        let (db, _) = db();
        let c = Constraint::NeverNull {
            class: ClassId::from("ghost"),
            attr: AttrName::from("x"),
        };
        assert!(db.check_constraint(&c).is_empty());
        assert_eq!(c.class(), &ClassId::from("ghost"));
        assert_eq!(c.attr(), &AttrName::from("x"));
    }
}
