//! Time-sorted extent indexing.
//!
//! The paper's `π(c, t)` (Section 3.2) asks for the *set* of members of a
//! class at an instant. The seed implementation answered it by scanning
//! every per-oid membership history of the class — `O(members ever)` per
//! query. This module adds an incremental, time-sorted index so extent
//! stabbing queries cost `O(log events + Δ)` where `Δ` is the distance to
//! the nearest checkpoint, while the per-oid histories remain the source
//! of truth for `membership_of`/`c_lifespan`.
//!
//! # Design
//!
//! Membership changes are append-mostly in time (all mutations happen at
//! the logical clock's `now`), so they are kept as a time-sorted log of
//! signed events: `+1` when an oid joins the extent at `t`, `−1` when it
//! leaves from `t` on. Membership of `i` at `t` is then *the sum of
//! `i`'s events at instants `≤ t`* — an order-free formulation that makes
//! same-instant join/leave pairs (e.g. a migrate bouncing through a class
//! in one tick) trivially correct.
//!
//! Three structures answer queries:
//!
//! * `events` — the sorted log (rare out-of-order inserts, e.g. a
//!   creation at `t` racing a termination recorded at `t + 1`, splice in
//!   place and invalidate later checkpoints);
//! * `checkpoints` — full sorted member sets taken every
//!   `max(256, members/8)` events, bounding replay length while keeping
//!   total checkpoint memory linear in the event count;
//! * `current` — the live member set (the sum of *all* events), serving
//!   `t ≥` last event time (the overwhelmingly common "query at now").

use std::collections::{BTreeMap, BTreeSet, HashMap};

use tchimera_temporal::{Instant, TemporalValue};

use crate::error::Result;
use crate::ident::Oid;

/// One membership change: `delta = +1` (join) or `−1` (leave), effective
/// from instant `at` onward.
#[derive(Clone, Copy, Debug)]
struct Event {
    at: Instant,
    oid: Oid,
    delta: i32,
}

/// A full member-set snapshot after the first `applied` events.
#[derive(Clone, Debug)]
struct Checkpoint {
    applied: usize,
    /// Sorted member oids.
    members: Vec<Oid>,
}

/// Minimum number of events between checkpoints.
const MIN_CHECKPOINT_GAP: usize = 256;

/// The time-sorted extent index of one class.
#[derive(Clone, Debug, Default)]
struct ExtentIndex {
    events: Vec<Event>,
    checkpoints: Vec<Checkpoint>,
    current: BTreeSet<Oid>,
}

impl ExtentIndex {
    /// Record a membership change effective from `at`.
    fn record(&mut self, at: Instant, oid: Oid, delta: i32) {
        let pos = self.events.partition_point(|e| e.at <= at);
        if pos < self.events.len() {
            // Out-of-order insert (bounded displacement: only events
            // recorded at `now + 1` by a same-instant termination can sort
            // later). Checkpoints summarizing a prefix that now shifts are
            // no longer prefixes — drop them.
            while self
                .checkpoints
                .last()
                .is_some_and(|c| c.applied > pos)
            {
                self.checkpoints.pop();
            }
        }
        self.events.insert(pos, Event { at, oid, delta });
        if delta > 0 {
            self.current.insert(oid);
        } else {
            self.current.remove(&oid);
        }
        let since_last = self.events.len()
            - self.checkpoints.last().map_or(0, |c| c.applied);
        if since_last >= MIN_CHECKPOINT_GAP.max(self.current.len() / 8) {
            tchimera_obs::counter!("core.extent.checkpoints").inc();
            self.checkpoints.push(Checkpoint {
                applied: self.events.len(),
                members: self.current.iter().copied().collect(),
            });
        }
    }

    /// Join events strictly after `lo` and at or before `hi`.
    fn joins_in(&self, lo: Instant, hi: Instant) -> impl Iterator<Item = (Instant, Oid)> + '_ {
        let a = self.events.partition_point(|e| e.at <= lo);
        let b = self.events.partition_point(|e| e.at <= hi);
        self.events[a..b]
            .iter()
            .filter(|e| e.delta > 0)
            .map(|e| (e.at, e.oid))
    }

    /// The sorted member set at instant `t`, under clock `now`.
    fn members_at(&self, t: Instant, now: Instant) -> Vec<Oid> {
        if t > now || self.events.is_empty() {
            tchimera_obs::counter!("core.extent.at_current").inc();
            return Vec::new();
        }
        // Number of events effective at or before `t`.
        let idx = self.events.partition_point(|e| e.at <= t);
        if idx == self.events.len() {
            tchimera_obs::counter!("core.extent.at_current").inc();
            return self.current.iter().copied().collect();
        }
        tchimera_obs::counter!("core.extent.at_replay").inc();
        // Latest checkpoint covering a prefix of those events.
        let ck = self
            .checkpoints
            .partition_point(|c| c.applied <= idx)
            .checked_sub(1)
            .map(|k| &self.checkpoints[k]);
        let (base, applied): (&[Oid], usize) =
            ck.map_or((&[], 0), |c| (&c.members, c.applied));
        tchimera_obs::counter!("core.extent.replayed_events").add((idx - applied) as u64);
        // Net per-oid delta over the replay window.
        let mut net: BTreeMap<Oid, i32> = BTreeMap::new();
        for e in &self.events[applied..idx] {
            *net.entry(e.oid).or_insert(0) += e.delta;
        }
        // Merge the sorted base set with the sorted delta map.
        let mut out = Vec::with_capacity(base.len() + net.len());
        let mut deltas = net.into_iter().peekable();
        let mut base_iter = base.iter().copied().peekable();
        loop {
            match (base_iter.peek().copied(), deltas.peek().map(|&(o, _)| o)) {
                (Some(b), Some(d)) if b < d => {
                    out.push(b);
                    base_iter.next();
                }
                (Some(b), Some(d)) if b > d => {
                    let (oid, n) = deltas.next().expect("peeked");
                    debug_assert!(d == oid);
                    if n > 0 {
                        out.push(oid);
                    }
                }
                (Some(b), Some(_)) => {
                    // Same oid in base and delta window: member iff the
                    // base count (1) plus the net change is positive.
                    let (_, n) = deltas.next().expect("peeked");
                    base_iter.next();
                    if 1 + n > 0 {
                        out.push(b);
                    }
                }
                (Some(b), None) => {
                    out.push(b);
                    base_iter.next();
                }
                (None, Some(_)) => {
                    let (oid, n) = deltas.next().expect("peeked");
                    if n > 0 {
                        out.push(oid);
                    }
                }
                (None, None) => break,
            }
        }
        out
    }
}

/// The membership store of one class: per-oid boolean histories (the
/// source of truth realizing the paper's `ext`/`proper-ext` temporal
/// attributes) plus the time-sorted [`ExtentIndex`] answering set-at-`t`
/// queries without scanning every history.
///
/// All mutations go through [`open`](Membership::open) /
/// [`close`](Membership::close) / [`close_before`](Membership::close_before)
/// so the two representations can never diverge.
#[derive(Clone, Debug, Default)]
pub(crate) struct Membership {
    histories: HashMap<Oid, TemporalValue<()>>,
    index: ExtentIndex,
}

impl Membership {
    /// Open a membership run for `oid` from `now` (no-op when already a
    /// member).
    pub(crate) fn open(&mut self, oid: Oid, now: Instant) -> Result<()> {
        let h = self.histories.entry(oid).or_default();
        if h.has_open_run() {
            return Ok(());
        }
        h.set_from(now, ())?;
        self.index.record(now, oid, 1);
        Ok(())
    }

    /// Close the open run at `now` inclusive (termination discipline):
    /// the oid stays a member through `now`.
    pub(crate) fn close(&mut self, oid: Oid, now: Instant) {
        let Some(h) = self.histories.get_mut(&oid) else {
            return;
        };
        if !h.has_open_run() {
            return;
        }
        // An open run implies a last entry; a history corrupted out of
        // that invariant must degrade to a no-op close, not a panic (the
        // scrubber runs these paths against deliberately damaged state).
        let Some(start) = h.entries().last().map(|e| e.start) else {
            return;
        };
        h.close(now);
        // A run opened after `now` never held: cancel it from its start.
        let at = if start > now { start } else { now.next() };
        self.index.record(at, oid, -1);
    }

    /// Close the open run strictly before `now` (migration discipline):
    /// membership ends at `now − 1`; a run opened at or after `now` never
    /// held.
    pub(crate) fn close_before(&mut self, oid: Oid, now: Instant) {
        let Some(h) = self.histories.get_mut(&oid) else {
            return;
        };
        if !h.has_open_run() {
            return;
        }
        // Same degradation discipline as `close`: never panic on a
        // history missing the entry its open-run flag promises.
        let Some(start) = h.entries().last().map(|e| e.start) else {
            return;
        };
        h.close_before(now);
        let at = if start >= now { start } else { now };
        self.index.record(at, oid, -1);
    }

    /// Indexed stabbing query: the sorted member set at `t`.
    pub(crate) fn members_at(&self, t: Instant, now: Instant) -> Vec<Oid> {
        let out = self.index.members_at(t, now);
        debug_assert_eq!(out, self.members_at_scan(t, now), "extent index diverged");
        out
    }

    /// Indexed window query: the sorted set of oids members at *some*
    /// instant of `[lo, hi]`. A member during the window either is a
    /// member at `lo` (runs are intervals, so any run covering a later
    /// window instant but starting at or before `lo` covers `lo`), or
    /// opens a run inside `(lo, hi]` — and every run opening emits a join
    /// event, so the event log locates those in `O(log events + joins in
    /// window)`. A join whose run was cancelled the same instant (e.g. a
    /// migrate bouncing through the class) is filtered out against the
    /// history.
    pub(crate) fn members_during(&self, lo: Instant, hi: Instant, now: Instant) -> Vec<Oid> {
        tchimera_obs::counter!("core.extent.during_queries").inc();
        let hi = hi.min(now);
        if lo > hi {
            return Vec::new();
        }
        let mut out = self.index.members_at(lo, now);
        for (at, oid) in self.index.joins_in(lo, hi) {
            if self
                .histories
                .get(&oid)
                .is_some_and(|h| h.is_defined_at(at, now))
            {
                out.push(oid);
            }
        }
        out.sort_unstable();
        out.dedup();
        debug_assert_eq!(
            out,
            self.members_during_scan(lo, hi, now),
            "extent index diverged on window [{lo:?}, {hi:?}]"
        );
        out
    }

    /// Reference implementation of [`Membership::members_during`]: scan
    /// every history for a run overlapping the window.
    pub(crate) fn members_during_scan(
        &self,
        lo: Instant,
        hi: Instant,
        now: Instant,
    ) -> Vec<Oid> {
        let window = tchimera_temporal::Interval::new(lo, hi.min(now));
        let mut v: Vec<Oid> = self
            .histories
            .iter()
            .filter(|(_, h)| {
                h.entries()
                    .iter()
                    .any(|e| !e.interval(now).intersect(window).is_empty())
            })
            .map(|(&i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// Reference implementation: linear scan over every per-oid history.
    /// Kept as the equivalence baseline for property tests and benches.
    pub(crate) fn members_at_scan(&self, t: Instant, now: Instant) -> Vec<Oid> {
        let mut v: Vec<Oid> = self
            .histories
            .iter()
            .filter(|(_, h)| h.is_defined_at(t, now))
            .map(|(&i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// The membership history of `oid`, if it was ever a member.
    pub(crate) fn history_of(&self, oid: Oid) -> Option<&TemporalValue<()>> {
        self.histories.get(&oid)
    }

    /// Number of per-oid membership histories (scrub cost accounting).
    pub(crate) fn history_count(&self) -> usize {
        self.histories.len()
    }

    /// All oids ever members.
    pub(crate) fn oids(&self) -> impl Iterator<Item = Oid> + '_ {
        self.histories.keys().copied()
    }

    /// The raw per-oid histories (read-only).
    pub(crate) fn histories(&self) -> &HashMap<Oid, TemporalValue<()>> {
        &self.histories
    }

    /// Rebuild a membership store (histories **and** the time-sorted
    /// index) from bare per-oid histories, as when importing a state
    /// snapshot. Every run contributes a join event at its start and —
    /// for closed runs `[s, e]` — a leave event at `e + 1`, exactly the
    /// instants the live [`open`](Membership::open) /
    /// [`close`](Membership::close) /
    /// [`close_before`](Membership::close_before) paths would have
    /// recorded. Events are replayed in time order, leaves before joins
    /// at the same instant (the live close-then-reopen order), so the
    /// index's current-member set matches the one incremental maintenance
    /// would have produced.
    /// Assert-free divergence check between the time-sorted index and the
    /// per-oid histories (the source of truth). Probes every instant at
    /// which either representation claims a membership change, plus
    /// `now`, and compares the indexed answer with the scan answer at
    /// each. The scrubber uses this instead of
    /// [`Membership::members_at`], whose `debug_assert` would abort the
    /// process on exactly the corruption being scrubbed for. Returns the
    /// number of probes performed, or `None` on the first divergence.
    pub(crate) fn verify_index(&self, now: Instant) -> Option<u64> {
        let mut probes: BTreeSet<Instant> = BTreeSet::new();
        probes.insert(now);
        for h in self.histories.values() {
            for e in h.entries() {
                probes.insert(e.start);
                if let tchimera_temporal::TimeBound::Fixed(end) = e.end {
                    probes.insert(end);
                    probes.insert(end.next());
                }
            }
        }
        // Boundaries the (possibly corrupt) index believes in must be
        // probed too: a bogus event at an instant no history mentions
        // would otherwise slip between probe points.
        for e in &self.index.events {
            probes.insert(e.at);
        }
        let n = probes.len() as u64 + 1;
        for &t in &probes {
            if self.index.members_at(t, now) != self.members_at_scan(t, now) {
                return None;
            }
        }
        // The current-member set is a derived structure of its own: the
        // fast path serves it verbatim once the clock passes the last
        // event, so it must equal the net-delta fold of the full event
        // stream (exactly what a checkpoint-free replay would produce).
        // Probing alone cannot see this: with an empty or future-dated
        // event list `members_at` never consults `current`, leaving a
        // corrupted entry latent until the next append.
        let mut net: BTreeMap<Oid, i32> = BTreeMap::new();
        for e in &self.index.events {
            *net.entry(e.oid).or_insert(0) += e.delta;
        }
        let replayed: BTreeSet<Oid> =
            net.into_iter().filter(|&(_, c)| c > 0).map(|(o, _)| o).collect();
        if replayed != self.index.current {
            return None;
        }
        Some(n)
    }

    /// Rebuild the time-sorted index from the per-oid histories (repair
    /// rung 1: the histories are the source of truth, the index is
    /// derived). Digest-neutral — only the derived structure changes.
    pub(crate) fn rebuild_index(&mut self) {
        let histories = std::mem::take(&mut self.histories);
        *self = Membership::from_histories(histories);
    }

    /// Deterministic corruption hook for scrubber tests: damage the
    /// derived index (never the histories — they are the source of
    /// truth) in a way [`Membership::verify_index`] is guaranteed to
    /// detect. `r` seeds the choice of damage.
    #[cfg(any(test, feature = "testing"))]
    pub(crate) fn corrupt_index_for_test(&mut self, r: u64) {
        let n = self.index.events.len();
        match r % 3 {
            // A member the histories never saw, visible at `now`.
            0 => {
                self.index.current.insert(Oid(u64::MAX - 1));
            }
            // Drop a genuine current member.
            1 if !self.index.current.is_empty() => {
                let victim = *self
                    .index
                    .current
                    .iter()
                    .nth((r as usize / 3) % self.index.current.len())
                    .expect("non-empty");
                self.index.current.remove(&victim);
            }
            // Flip a non-final event's delta (a final event is masked by
            // the current-set fast path, so only earlier ones are
            // observable — and therefore detectable).
            2 if n >= 2 => {
                let i = (r as usize / 3) % (n - 1);
                self.index.events[i].delta = -self.index.events[i].delta;
                self.index.checkpoints.retain(|c| c.applied <= i);
            }
            _ => {
                self.index.current.insert(Oid(u64::MAX - 1));
            }
        }
    }

    pub(crate) fn from_histories(histories: HashMap<Oid, TemporalValue<()>>) -> Membership {
        let mut events: Vec<(Instant, Oid, i32)> = Vec::new();
        for (&oid, h) in &histories {
            for e in h.entries() {
                events.push((e.start, oid, 1));
                if let tchimera_temporal::TimeBound::Fixed(end) = e.end {
                    events.push((end.next(), oid, -1));
                }
            }
        }
        events.sort_unstable_by_key(|&(at, oid, delta)| (at, delta, oid));
        let mut index = ExtentIndex::default();
        for (at, oid, delta) in events {
            index.record(at, oid, delta);
        }
        Membership { histories, index }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Instant {
        Instant(n)
    }

    #[test]
    fn open_close_roundtrip() {
        let mut m = Membership::default();
        m.open(Oid(1), t(10)).unwrap();
        m.open(Oid(2), t(12)).unwrap();
        m.close(Oid(1), t(15));
        let now = t(20);
        assert_eq!(m.members_at(t(9), now), vec![]);
        assert_eq!(m.members_at(t(10), now), vec![Oid(1)]);
        assert_eq!(m.members_at(t(13), now), vec![Oid(1), Oid(2)]);
        assert_eq!(m.members_at(t(15), now), vec![Oid(1), Oid(2)]);
        assert_eq!(m.members_at(t(16), now), vec![Oid(2)]);
        assert_eq!(m.members_at(t(25), now), vec![]);
    }

    #[test]
    fn close_paths_degrade_to_no_ops_on_absent_or_closed_runs() {
        // Regression for the unwrap audit: `close`/`close_before` used to
        // assume a known oid with an open run; both assumptions break when
        // the scrubber replays these paths against damaged state, so each
        // must be a silent no-op rather than a panic or a spurious event.
        let mut m = Membership::default();
        m.open(Oid(1), t(10)).unwrap();
        let now = t(20);

        // Unknown oid: nothing to close.
        m.close(Oid(99), now);
        m.close_before(Oid(99), now);
        assert!(m.history_of(Oid(99)).is_none());

        // Already-closed run: the second close must not record a second
        // leave event (which would drive the net delta negative).
        m.close(Oid(1), t(12));
        m.close(Oid(1), t(14));
        m.close_before(Oid(1), t(14));
        assert_eq!(m.members_at(t(12), now), vec![Oid(1)]);
        assert_eq!(m.members_at(t(13), now), vec![]);

        // The index stayed coherent through all of it.
        assert!(m.verify_index(now).is_some());
        assert_eq!(m.members_at(t(13), now), m.members_at_scan(t(13), now));
    }

    #[test]
    fn same_instant_join_and_leave_cancels() {
        let mut m = Membership::default();
        m.open(Oid(7), t(5)).unwrap();
        // Migration away at the same instant: the run never held.
        m.close_before(Oid(7), t(5));
        let now = t(10);
        assert_eq!(m.members_at(t(5), now), vec![]);
        assert_eq!(m.members_at_scan(t(5), now), vec![]);
    }

    #[test]
    fn reopen_after_close() {
        let mut m = Membership::default();
        m.open(Oid(3), t(1)).unwrap();
        m.close_before(Oid(3), t(4)); // member over [1, 3]
        m.open(Oid(3), t(8)).unwrap();
        let now = t(12);
        assert_eq!(m.members_at(t(3), now), vec![Oid(3)]);
        assert_eq!(m.members_at(t(5), now), vec![]);
        assert_eq!(m.members_at(t(8), now), vec![Oid(3)]);
        assert_eq!(m.history_of(Oid(3)).unwrap().run_count(), 2);
    }

    #[test]
    fn out_of_order_insert_is_handled() {
        let mut m = Membership::default();
        m.open(Oid(1), t(5)).unwrap();
        // Termination records the leave at now + 1 …
        m.close(Oid(1), t(7));
        // … then another oid joins at 7, sorting before the leave at 8.
        m.open(Oid(2), t(7)).unwrap();
        let now = t(9);
        assert_eq!(m.members_at(t(7), now), vec![Oid(1), Oid(2)]);
        assert_eq!(m.members_at(t(8), now), vec![Oid(2)]);
    }

    #[test]
    fn checkpoints_agree_with_scan_on_long_logs() {
        let mut m = Membership::default();
        // Enough churn to cross several checkpoint boundaries.
        for k in 0..2000u64 {
            m.open(Oid(k % 700), t(k)).unwrap();
            if k % 3 == 0 {
                m.close_before(Oid((k / 2) % 700), t(k));
            }
        }
        let now = t(2200);
        for probe in [0, 1, 99, 500, 1234, 1999, 2100] {
            assert_eq!(
                m.members_at(t(probe), now),
                m.members_at_scan(t(probe), now),
                "diverged at t={probe}"
            );
        }
    }

    #[test]
    fn future_instants_are_empty() {
        let mut m = Membership::default();
        m.open(Oid(1), t(5)).unwrap();
        assert_eq!(m.members_at(t(9), t(8)), vec![]);
        assert_eq!(m.members_at(t(8), t(8)), vec![Oid(1)]);
    }
}
