//! Query admission control: a shared concurrent-query gauge with a
//! configurable cap.
//!
//! A [`Database`](crate::Database) (and, through it, every
//! `PersistentDatabase`) carries one [`Admission`] shared by all clones.
//! The query layer asks for an [`AdmissionPermit`] before executing a
//! statement; when the cap is reached the request is **shed immediately**
//! rather than queued — under overload an unbounded queue only converts
//! excess load into latency and memory growth, while a fast refusal keeps
//! the already-admitted queries (and every non-query operation) serving.
//! The caller turns a refusal into a typed `Overloaded` error.
//!
//! The gauge is mirrored into the `query.governor.active` metric;
//! admissions and refusals tick `query.governor.admitted` /
//! `query.governor.shed` (`DESIGN.md` §9.3, §12).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default cap on concurrently executing queries per database.
pub const DEFAULT_MAX_CONCURRENT_QUERIES: usize = 64;

/// A concurrent-query gauge with a configurable cap. Shared (via `Arc`)
/// by every clone of a [`Database`](crate::Database), so queries running
/// against any handle count toward the same limit.
#[derive(Debug)]
pub struct Admission {
    active: AtomicUsize,
    cap: AtomicUsize,
}

impl Default for Admission {
    fn default() -> Admission {
        Admission::new(DEFAULT_MAX_CONCURRENT_QUERIES)
    }
}

impl Admission {
    /// An admission gate allowing at most `cap` concurrent queries
    /// (`0` is clamped to `1`).
    #[must_use]
    pub fn new(cap: usize) -> Admission {
        Admission {
            active: AtomicUsize::new(0),
            cap: AtomicUsize::new(cap.max(1)),
        }
    }

    /// Number of currently admitted queries.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap.load(Ordering::Relaxed)
    }

    /// Reconfigure the cap (`0` is clamped to `1`). Takes effect for
    /// subsequent admissions; already-admitted queries are unaffected.
    pub fn set_cap(&self, cap: usize) {
        self.cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// Try to admit one query. Returns the RAII permit, or `None` when
    /// the cap is reached — the caller sheds the query instead of
    /// queueing it.
    pub fn try_enter(&self) -> Option<AdmissionPermit<'_>> {
        let cap = self.cap();
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                tchimera_obs::counter!("query.governor.shed").inc();
                return None;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    tchimera_obs::counter!("query.governor.admitted").inc();
                    tchimera_obs::gauge!("query.governor.active").adjust(1);
                    return Some(AdmissionPermit { gate: self });
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// An admitted query slot; releases the slot (and decrements the
/// `query.governor.active` gauge) on drop.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.active.fetch_sub(1, Ordering::AcqRel);
        tchimera_obs::gauge!("query.governor.active").adjust(-1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_cap_then_sheds() {
        let gate = Admission::new(2);
        let a = gate.try_enter().expect("first");
        let b = gate.try_enter().expect("second");
        assert!(gate.try_enter().is_none(), "cap reached: must shed");
        assert_eq!(gate.active(), 2);
        drop(a);
        let c = gate.try_enter().expect("slot freed");
        drop(b);
        drop(c);
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn cap_is_reconfigurable_and_clamped() {
        let gate = Admission::new(0);
        assert_eq!(gate.cap(), 1, "zero cap clamps to one");
        gate.set_cap(3);
        assert_eq!(gate.cap(), 3);
        let _a = gate.try_enter().unwrap();
        let _b = gate.try_enter().unwrap();
        gate.set_cap(1);
        assert!(gate.try_enter().is_none(), "new cap applies immediately");
    }

    #[test]
    fn database_clones_share_the_gate() {
        let db = crate::Database::new();
        let clone = db.clone();
        let permit = db.admission().try_enter().unwrap();
        assert_eq!(clone.admission().active(), 1);
        drop(permit);
        assert_eq!(clone.admission().active(), 0);
    }
}
