//! Substitutability and coercion (Section 6.1).

use crate::database::Database;
use crate::error::{ModelError, Result};
use crate::ident::{ClassId, Oid};
use crate::value::Value;

impl Database {
    /// View an object as an instance of `as_class` — **substitutability**
    /// (Section 6.1): each instance of a class can be used whenever an
    /// instance of one of its superclasses is expected.
    ///
    /// The object must currently be a member of `as_class`. The result is
    /// a record matching `type(as_class)` (the structural type of the
    /// viewing class): attributes the viewing class does not declare are
    /// projected away, and when the viewing class declares an attribute
    /// with a *non-temporal* domain that the object stores as a history
    /// (because its own class refined the domain to a temporal one under
    /// Rule 6.1), the history is **coerced** to its current value via the
    /// `snapshot` function: "we forget the history of attribute `a` and
    /// consider only its current value".
    pub fn view_as(&self, oid: Oid, as_class: &ClassId) -> Result<Value> {
        let now = self.now();
        let o = self.object(oid)?;
        let class = self.schema().class(as_class)?;
        if !class.membership_of(oid, now).contains(now) {
            return Err(ModelError::TypeMismatch {
                expected: crate::types::Type::Object(as_class.clone()),
                value: oid.to_string(),
            });
        }
        let mut fields = Vec::with_capacity(class.all_attrs.len());
        for (name, decl) in &class.all_attrs {
            let stored = o.attr(name).cloned().unwrap_or(Value::Null);
            let v = match (&stored, decl.ty.is_temporal()) {
                // Coercion: temporal storage viewed through a static
                // domain yields snapshot(i, now).a.
                (Value::Temporal(h), false) => {
                    h.value_now(now).cloned().unwrap_or(Value::Null)
                }
                // A static stored value viewed through a temporal domain
                // cannot arise: Rule 6.1 only refines static → temporal,
                // and the object stores per its *most specific* class.
                _ => stored,
            };
            fields.push((name.clone(), v));
        }
        Ok(Value::Record(fields))
    }

    /// `true` if instances of `sub` may stand wherever instances of `sup`
    /// are expected (the ISA-based substitutability test).
    pub fn substitutable(&self, sub: &ClassId, sup: &ClassId) -> bool {
        self.schema().is_subclass(sub, sup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassDef;
    use crate::database::attrs;
    use crate::types::Type;
    use tchimera_temporal::Instant;

    /// The Section 6.1 scenario: a subclass refines a static attribute
    /// into a temporal one.
    fn db() -> (Database, Oid) {
        let mut db = Database::new();
        db.define_class(
            ClassDef::new("person")
                .attr("address", Type::STRING)
                .attr("name", Type::STRING),
        )
        .unwrap();
        db.define_class(
            ClassDef::new("tracked-person")
                .isa("person")
                // Rule 6.1 case 2: static → temporal refinement.
                .attr("address", Type::temporal(Type::STRING))
                .attr("tracker-id", Type::INTEGER),
        )
        .unwrap();
        db.advance_to(Instant(10)).unwrap();
        let i = db
            .create_object(
                &ClassId::from("tracked-person"),
                attrs([
                    ("name", Value::str("Bob")),
                    ("address", Value::str("Milano")),
                    ("tracker-id", Value::Int(7)),
                ]),
            )
            .unwrap();
        (db, i)
    }

    #[test]
    fn coercion_forgets_history() {
        let (mut db, i) = db();
        db.advance_to(Instant(20)).unwrap();
        db.set_attr(i, &"address".into(), Value::str("Genova")).unwrap();
        db.advance_to(Instant(30)).unwrap();

        // Viewed as its own class: address is the full history.
        let as_tracked = db.view_as(i, &ClassId::from("tracked-person")).unwrap();
        let h = as_tracked
            .field(&"address".into())
            .unwrap()
            .as_temporal()
            .expect("history");
        assert_eq!(h.value_at(Instant(15), db.now()), Some(&Value::str("Milano")));

        // Viewed as person: the history is coerced to its current value.
        let as_person = db.view_as(i, &ClassId::from("person")).unwrap();
        assert_eq!(
            as_person,
            Value::record([
                ("address", Value::str("Genova")),
                ("name", Value::str("Bob")),
            ])
        );
        // The coerced view conforms to the superclass structural type.
        let t = db.type_of(&ClassId::from("person")).unwrap();
        assert!(db.value_in_type(&as_person, &t, db.now()));
    }

    #[test]
    fn view_projects_extra_attributes_away() {
        let (db, i) = db();
        let as_person = db.view_as(i, &ClassId::from("person")).unwrap();
        assert!(as_person.field(&"tracker-id".into()).is_none());
    }

    #[test]
    fn view_requires_membership() {
        let (mut db, i) = db();
        db.define_class(ClassDef::new("unrelated")).unwrap();
        assert!(db.view_as(i, &ClassId::from("unrelated")).is_err());
        // A plain person is not viewable as tracked-person.
        let p = db
            .create_object(&ClassId::from("person"), attrs([("name", Value::str("Z"))]))
            .unwrap();
        assert!(db.view_as(p, &ClassId::from("tracked-person")).is_err());
        assert!(db.view_as(p, &ClassId::from("person")).is_ok());
    }

    #[test]
    fn substitutability_follows_isa() {
        let (db, _) = db();
        assert!(db.substitutable(&ClassId::from("tracked-person"), &ClassId::from("person")));
        assert!(!db.substitutable(&ClassId::from("person"), &ClassId::from("tracked-person")));
    }
}
