//! Objects (Definition 5.1) and their derived states (Section 5.2–5.3).

use std::collections::BTreeMap;

use tchimera_temporal::{Instant, Lifespan, TemporalValue};

use crate::error::{ModelError, Result};
use crate::ident::{AttrName, ClassId, Oid};
use crate::value::Value;

/// An object: the 4-tuple `(i, lifespan, v, class-history)` of
/// Definition 5.1.
///
/// * `oid` — the object identifier, immutable for the object's lifetime;
/// * `lifespan` — contiguous, possibly still open at `now` (no
///   *reincarnate* operation, Section 5.1);
/// * `attrs` — the record value `v = (a1:v1, …, an:vn)`; temporal
///   attributes hold [`Value::Temporal`] histories, static attributes hold
///   plain current values (their past is not recorded — Section 1.1);
/// * `class_history` — the history of the *most specific class* the object
///   belongs to over time, `{⟨τ1,c1⟩, …, ⟨τn,cn⟩}`.
///
/// The paper stores, for static objects, only the current class; this
/// implementation always keeps the full class history (it costs one run
/// per migration and makes the static case a degenerate history — the
/// behaviour required by Definition 5.1 is a projection of it).
#[derive(Clone, Debug, PartialEq)]
pub struct Object {
    /// The object identifier `i ∈ OI`.
    pub oid: Oid,
    /// The object lifespan.
    pub lifespan: Lifespan,
    /// The attribute record `v`.
    pub attrs: BTreeMap<AttrName, Value>,
    /// The most-specific-class history.
    pub class_history: TemporalValue<ClassId>,
}

impl Object {
    /// The most specific class the object belonged to at instant `t`.
    pub fn class_at(&self, t: Instant, now: Instant) -> Option<&ClassId> {
        self.class_history.value_at(t, now)
    }

    /// The current most specific class (`None` once terminated).
    pub fn current_class(&self, now: Instant) -> Option<&ClassId> {
        self.class_history.value_now(now)
    }

    /// `true` if the object is *historical*: it has at least one temporal
    /// attribute (Section 5.1).
    pub fn is_historical(&self) -> bool {
        self.attrs.values().any(|v| matches!(v, Value::Temporal(_)))
    }

    /// `true` if the object has at least one static (non-temporal)
    /// attribute. Such objects have no reconstructible snapshot in the
    /// past (Section 5.3).
    pub fn has_static_attrs(&self) -> bool {
        self.attrs.values().any(|v| !matches!(v, Value::Temporal(_)))
    }

    /// The names of the temporal attributes *meaningful* at instant `t`
    /// (Definition 5.2): those whose history is defined at `t`.
    pub fn meaningful_temporal_attrs(&self, t: Instant, now: Instant) -> Vec<&AttrName> {
        self.attrs
            .iter()
            .filter_map(|(n, v)| match v {
                Value::Temporal(h) if h.is_defined_at(t, now) => Some(n),
                _ => None,
            })
            .collect()
    }

    /// The **historical value** of the object at instant `t` (Section 5.2):
    /// the record `(ak: vk(t), …, am: vm(t))` of the meaningful temporal
    /// attributes evaluated at `t`. This is the function `h_state`
    /// (Table 3).
    #[must_use]
    pub fn h_state(&self, t: Instant, now: Instant) -> Value {
        Value::Record(
            self.attrs
                .iter()
                .filter_map(|(n, v)| match v {
                    Value::Temporal(h) => h
                        .value_at(t, now)
                        .map(|x| (n.clone(), x.clone())),
                    _ => None,
                })
                .collect(),
        )
    }

    /// The **static value** of the object (Section 5.2): the record of the
    /// static attributes with their current values. This is the function
    /// `s_state` (Table 3).
    #[must_use]
    pub fn s_state(&self) -> Value {
        Value::Record(
            self.attrs
                .iter()
                .filter(|(_, v)| !matches!(v, Value::Temporal(_)))
                .map(|(n, v)| (n.clone(), v.clone()))
                .collect(),
        )
    }

    /// The `snapshot` function (Section 5.3): project the full state of the
    /// object at instant `t` — static attributes contribute their current
    /// value, temporal attributes their value at `t`.
    ///
    /// For an object with at least one static attribute, `snapshot(i, t)`
    /// is **undefined** for `t ≠ now` (the past of static attributes is not
    /// recorded); the error [`ModelError::SnapshotUndefined`] is returned.
    /// For objects with only temporal attributes, `snapshot` coincides with
    /// [`Object::h_state`].
    pub fn snapshot(&self, t: Instant, now: Instant) -> Result<Value> {
        if self.has_static_attrs() && t != now {
            return Err(ModelError::SnapshotUndefined { oid: self.oid, at: t });
        }
        Ok(Value::Record(
            self.attrs
                .iter()
                .filter_map(|(n, v)| match v {
                    Value::Temporal(h) => {
                        h.value_at(t, now).map(|x| (n.clone(), x.clone()))
                    }
                    other => Some((n.clone(), other.clone())),
                })
                .collect(),
        ))
    }

    /// The oids this object refers to at instant `t` — the function `ref`
    /// (Table 3): every oid appearing in an attribute value at `t` (for
    /// temporal attributes, in the run covering `t`).
    #[must_use]
    pub fn refs_at(&self, t: Instant, now: Instant) -> Vec<Oid> {
        let mut out = Vec::new();
        for v in self.attrs.values() {
            v.oids_at(t, now, &mut out);
        }
        out.sort();
        out.dedup();
        out
    }

    /// Every oid this object has ever referred to.
    #[must_use]
    pub fn all_refs(&self) -> Vec<Oid> {
        let mut out = Vec::new();
        for v in self.attrs.values() {
            v.all_oids(&mut out);
        }
        out.sort();
        out.dedup();
        out
    }

    /// Attribute value lookup.
    pub fn attr(&self, name: &AttrName) -> Option<&Value> {
        self.attrs.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the object of paper Example 5.1.
    pub(crate) fn paper_object() -> Object {
        let name = TemporalValue::starting_at(Instant(20), Value::str("IDEA"));
        let subproject = {
            let mut h = TemporalValue::new();
            h.set_from(Instant(20), Value::Oid(Oid(4))).unwrap();
            h.set_from(Instant(46), Value::Oid(Oid(9))).unwrap();
            h
        };
        let participants = {
            let mut h = TemporalValue::new();
            h.set_from(
                Instant(20),
                Value::set([Value::Oid(Oid(2)), Value::Oid(Oid(3))]),
            )
            .unwrap();
            h.set_from(
                Instant(81),
                Value::set([Value::Oid(Oid(2)), Value::Oid(Oid(3)), Value::Oid(Oid(8))]),
            )
            .unwrap();
            h
        };
        let mut attrs = BTreeMap::new();
        attrs.insert(AttrName::from("name"), Value::Temporal(name));
        attrs.insert(
            AttrName::from("objective"),
            Value::str("Implementation"),
        );
        attrs.insert(
            AttrName::from("workplan"),
            Value::set([Value::Oid(Oid(7))]),
        );
        attrs.insert(AttrName::from("subproject"), Value::Temporal(subproject));
        attrs.insert(AttrName::from("participants"), Value::Temporal(participants));
        Object {
            oid: Oid(1),
            lifespan: Lifespan::starting_at(Instant(20)),
            attrs,
            class_history: TemporalValue::starting_at(Instant(20), ClassId::from("project")),
        }
    }

    #[test]
    fn example_5_1_is_historical() {
        let o = paper_object();
        assert!(o.is_historical());
        assert!(o.has_static_attrs());
        assert_eq!(
            o.current_class(Instant(100)),
            Some(&ClassId::from("project"))
        );
        assert_eq!(o.class_at(Instant(30), Instant(100)), Some(&ClassId::from("project")));
        assert_eq!(o.class_at(Instant(10), Instant(100)), None);
    }

    #[test]
    fn example_5_2_states() {
        let o = paper_object();
        let now = Instant(100);
        // s_state(i1) = (objective:'Implementation', workplan:{i7})
        assert_eq!(
            o.s_state(),
            Value::record([
                ("objective", Value::str("Implementation")),
                ("workplan", Value::set([Value::Oid(Oid(7))])),
            ])
        );
        // h_state(i1, 50) = (name:'IDEA', subproject:i9, participants:{i2,i3})
        assert_eq!(
            o.h_state(Instant(50), now),
            Value::record([
                ("name", Value::str("IDEA")),
                ("subproject", Value::Oid(Oid(9))),
                ("participants", Value::set([Value::Oid(Oid(2)), Value::Oid(Oid(3))])),
            ])
        );
        // At t=30 the subproject was i4.
        assert_eq!(
            o.h_state(Instant(30), now).field(&AttrName::from("subproject")),
            Some(&Value::Oid(Oid(4)))
        );
    }

    #[test]
    fn h_state_drops_non_meaningful_attrs() {
        let mut o = paper_object();
        // Close participants at 84: not meaningful at 85 onwards.
        o.attrs
            .get_mut(&AttrName::from("participants"))
            .unwrap()
            .as_temporal_mut()
            .unwrap()
            .close(Instant(84));
        let now = Instant(100);
        let h = o.h_state(Instant(85), now);
        assert!(h.field(&AttrName::from("participants")).is_none());
        assert!(h.field(&AttrName::from("name")).is_some());
        // name and subproject remain meaningful at 85.
        let names = o.meaningful_temporal_attrs(Instant(85), now);
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn snapshot_semantics_from_section_5_3() {
        let o = paper_object();
        let now = Instant(100);
        // snapshot(i1, now) is defined and merges static + temporal@now.
        let s = o.snapshot(now, now).unwrap();
        assert_eq!(
            s,
            Value::record([
                ("name", Value::str("IDEA")),
                ("objective", Value::str("Implementation")),
                ("workplan", Value::set([Value::Oid(Oid(7))])),
                ("subproject", Value::Oid(Oid(9))),
                (
                    "participants",
                    Value::set([Value::Oid(Oid(2)), Value::Oid(Oid(3)), Value::Oid(Oid(8))])
                ),
            ])
        );
        // snapshot(i1, t) undefined for t ≠ now (object has static attrs).
        assert!(matches!(
            o.snapshot(Instant(50), now),
            Err(ModelError::SnapshotUndefined { .. })
        ));
    }

    #[test]
    fn snapshot_equals_h_state_for_fully_temporal_objects() {
        let mut o = paper_object();
        o.attrs.remove(&AttrName::from("objective"));
        o.attrs.remove(&AttrName::from("workplan"));
        assert!(!o.has_static_attrs());
        let now = Instant(100);
        let t = Instant(50);
        assert_eq!(o.snapshot(t, now).unwrap(), o.h_state(t, now));
    }

    #[test]
    fn refs_follow_time() {
        let o = paper_object();
        let now = Instant(100);
        // At t=30: workplan {i7}, subproject i4, participants {i2,i3}.
        assert_eq!(
            o.refs_at(Instant(30), now),
            vec![Oid(2), Oid(3), Oid(4), Oid(7)]
        );
        // At t=90: subproject i9, participants {i2,i3,i8}.
        assert_eq!(
            o.refs_at(Instant(90), now),
            vec![Oid(2), Oid(3), Oid(7), Oid(8), Oid(9)]
        );
        assert_eq!(
            o.all_refs(),
            vec![Oid(2), Oid(3), Oid(4), Oid(7), Oid(8), Oid(9)]
        );
    }
}
