//! Observability surface of the core crate.
//!
//! Instrumentation throughout the model (consistency sweeps, the extent
//! index, the reverse-reference index) records into the process-global
//! [`tchimera_obs`] registry; this module names the full core vocabulary
//! and exposes it through [`Database::metrics`] / [`Database::take_trace`].
//! The metric names are API — see `DESIGN.md` §9 for the contract table.

use tchimera_obs::{MetricsSnapshot, TraceEvent};

use crate::database::Database;

/// Every metric name the core crate records, in registry order.
///
/// `DESIGN.md` §9 documents each entry; a round-trip test asserts this
/// list and the documentation stay in sync with the snapshot.
pub const CORE_METRICS: &[&str] = &[
    "core.attridx.builds",
    "core.attridx.evictions",
    "core.attridx.incremental",
    "core.attridx.invalidations",
    "core.attridx.probes",
    "core.attridx.reconciles",
    "core.check_database",
    "core.check_oid_uniqueness",
    "core.check_refs",
    "core.consistency.errors",
    "core.consistency.objects_checked",
    "core.consistency.par_items",
    "core.consistency.workers",
    "core.extent.at_current",
    "core.extent.at_replay",
    "core.extent.checkpoints",
    "core.extent.during_queries",
    "core.extent.replayed_events",
    "core.refindex.incremental",
    "core.refindex.probes",
    "core.refindex.rebuilds",
    "core.scrub.clean_cycles",
    "core.scrub.cycle",
    "core.scrub.cycles",
    "core.scrub.divergences",
    "core.scrub.items",
    "core.scrub.quarantined",
    "core.scrub.repairs.index_rebuild",
    "core.scrub.repairs.rematerialize",
    "core.scrub.repairs.replica_pull",
    "core.scrub.steps",
];

/// Register every core metric (at zero) so snapshots always carry the
/// full documented vocabulary, even for paths a workload never hit.
pub fn touch_metrics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let r = tchimera_obs::registry();
        // Spans record latency histograms under their own name.
        r.histogram("core.check_database");
        r.histogram("core.check_oid_uniqueness");
        r.histogram("core.check_refs");
        r.histogram("core.scrub.cycle");
        r.gauge("core.consistency.workers");
        r.gauge("core.scrub.quarantined");
        for name in CORE_METRICS {
            match *name {
                "core.check_database" | "core.check_oid_uniqueness" | "core.check_refs"
                | "core.scrub.cycle" | "core.consistency.workers" | "core.scrub.quarantined" => {}
                counter => {
                    r.counter(counter);
                }
            }
        }
    });
}

impl Database {
    /// A point-in-time snapshot of every metric the process has recorded
    /// — core model counters plus whatever the storage and query layers
    /// have registered (the registry is process-global). Serialize with
    /// [`MetricsSnapshot::to_json`].
    ///
    /// All core metric names are present even at zero; see `DESIGN.md`
    /// §9 for their meanings.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        touch_metrics();
        tchimera_obs::snapshot()
    }

    /// Drain the span/event trace buffered since the last call.
    ///
    /// Returns events only when a ring-buffer subscriber is live (see
    /// [`tchimera_obs::install_ring_buffer`]); with the default noop
    /// subscriber the trace is empty and tracing costs nothing.
    #[must_use]
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        tchimera_obs::take_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_snapshot_names_every_core_metric() {
        let db = Database::new();
        let snap = db.metrics();
        for name in CORE_METRICS {
            assert!(snap.contains(name), "metric {name} missing from snapshot");
        }
    }

    #[test]
    fn take_trace_empty_without_ring_buffer() {
        // Under the default noop subscriber the trace drains empty.
        let db = Database::new();
        let _ = db.take_trace();
        assert!(db.take_trace().is_empty());
    }
}
