//! Property tests for the paper's typing theorems:
//!
//! * **Theorem 3.1 (soundness)** — a type deduced by the Definition 3.6
//!   rules contains the value: `infer_type(v, t) = Some(T)` implies
//!   `v ∈ [[T]]_t`.
//! * **Theorem 3.2 (completeness)** — a legal value of `T` at `t` is
//!   deduced a type from which `T` follows: if `v ∈ [[T]]_t` (here: `v`
//!   generated *from* `T`), inference returns either no principal type
//!   (null / empty collections — values of every type) or some `T' ≤_T T`.
//! * **Theorem 6.1** — `T1 ≤_T T2 ⇒ ∀t. [[T1]]_t ⊆ [[T2]]_t`.

use proptest::prelude::*;
use tchimera_core::{
    attrs, Attrs, ClassDef, ClassId, Database, Instant, Interval, Oid, TemporalValue, Type, Value,
};

/// Classes whose full extent is stable over `[10, 100]` (objects created at
/// 10, never migrated): any member oid is usable in temporal runs anywhere
/// within that window.
const CLASSES: [&str; 4] = ["person", "employee", "manager", "student"];

/// Build the test database: the staff hierarchy plus three stable objects
/// per class and one migrating object.
fn build_db() -> (Database, Vec<(ClassId, Vec<Oid>)>, Oid) {
    let mut db = Database::new();
    db.define_class(ClassDef::new("person")).unwrap();
    db.define_class(ClassDef::new("employee").isa("person")).unwrap();
    db.define_class(ClassDef::new("manager").isa("employee")).unwrap();
    db.define_class(ClassDef::new("student").isa("person")).unwrap();
    db.advance_to(Instant(10)).unwrap();
    let mut extents = Vec::new();
    for c in CLASSES {
        let cid = ClassId::from(c);
        let oids: Vec<Oid> = (0..3)
            .map(|_| db.create_object(&cid, Attrs::new()).unwrap())
            .collect();
        extents.push((cid, oids));
    }
    // One object that migrates at t=50 (employee → manager).
    let migrant = db
        .create_object(&ClassId::from("employee"), Attrs::new())
        .unwrap();
    db.advance_to(Instant(50)).unwrap();
    db.migrate(migrant, &ClassId::from("manager"), attrs::<&str, _>([]))
        .unwrap();
    db.advance_to(Instant(100)).unwrap();
    (db, extents, migrant)
}

/// A recipe for generating a (type, member value) pair.
#[derive(Clone, Debug)]
enum Shape {
    Basic(u8),
    Time,
    Object(usize),
    Set(Box<Shape>, u8),
    List(Box<Shape>, u8),
    Record(Vec<(String, Shape)>),
    Temporal(Box<Shape>, Vec<(u64, u64)>),
    Null(Box<Shape>),
}

fn arb_shape(depth: u32) -> BoxedStrategy<Shape> {
    let leaf = prop_oneof![
        (0u8..5).prop_map(Shape::Basic),
        Just(Shape::Time),
        (0usize..CLASSES.len()).prop_map(Shape::Object),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), 0u8..4).prop_map(|(s, n)| Shape::Set(Box::new(s), n)),
            (inner.clone(), 0u8..4).prop_map(|(s, n)| Shape::List(Box::new(s), n)),
            prop::collection::vec(("[a-d]", inner.clone()), 1..4).prop_map(|fs| {
                let mut fields: Vec<(String, Shape)> = Vec::new();
                for (n, s) in fs {
                    if !fields.iter().any(|(m, _)| *m == n) {
                        fields.push((n, s));
                    }
                }
                Shape::Record(fields)
            }),
            (
                inner.clone(),
                prop::collection::vec((10u64..90, 1u64..10), 1..4)
            )
                .prop_filter("no temporal nesting", |(s, _)| !contains_temporal_or_time(s))
                .prop_map(|(s, runs)| Shape::Temporal(Box::new(s), runs)),
            inner.prop_map(|s| Shape::Null(Box::new(s))),
        ]
    })
    .boxed()
}

fn contains_temporal_or_time(s: &Shape) -> bool {
    match s {
        Shape::Time => true,
        Shape::Temporal(..) => true,
        Shape::Basic(_) | Shape::Object(_) => false,
        Shape::Set(s, _) | Shape::List(s, _) | Shape::Null(s) => contains_temporal_or_time(s),
        Shape::Record(fs) => fs.iter().any(|(_, s)| contains_temporal_or_time(s)),
    }
}

/// Instantiate a shape into a type and a value that is a member of that
/// type at every instant of `[10, 100]`.
fn realize(
    shape: &Shape,
    extents: &[(ClassId, Vec<Oid>)],
    salt: u64,
) -> (Type, Value) {
    match shape {
        Shape::Basic(k) => match k % 5 {
            0 => (Type::INTEGER, Value::Int(salt as i64)),
            1 => (Type::REAL, Value::Real(salt as f64 * 0.5)),
            2 => (Type::BOOL, Value::Bool(salt % 2 == 0)),
            3 => (Type::CHARACTER, Value::Char(char::from(b'a' + (salt % 26) as u8))),
            _ => (Type::STRING, Value::str(format!("s{salt}"))),
        },
        Shape::Time => (Type::Time, Value::Time(Instant(salt % 1000))),
        Shape::Object(k) => {
            let (cid, oids) = &extents[*k % extents.len()];
            let oid = oids[(salt as usize) % oids.len()];
            (Type::Object(cid.clone()), Value::Oid(oid))
        }
        Shape::Set(inner, n) => {
            let (t, _) = realize(inner, extents, salt);
            let items: Vec<Value> = (0..*n)
                .map(|i| realize(inner, extents, salt.wrapping_add(i as u64)).1)
                .collect();
            (Type::set_of(t), Value::set(items))
        }
        Shape::List(inner, n) => {
            let (t, _) = realize(inner, extents, salt);
            let items: Vec<Value> = (0..*n)
                .map(|i| realize(inner, extents, salt.wrapping_add(i as u64)).1)
                .collect();
            (Type::list_of(t), Value::list(items))
        }
        Shape::Record(fs) => {
            let mut tys = Vec::new();
            let mut vals = Vec::new();
            for (i, (n, s)) in fs.iter().enumerate() {
                let (t, v) = realize(s, extents, salt.wrapping_add(i as u64 * 7));
                tys.push((n.clone(), t));
                vals.push((n.clone(), v));
            }
            (Type::record_of(tys), Value::record(vals))
        }
        Shape::Temporal(inner, runs) => {
            let (t, _) = realize(inner, extents, salt);
            let mut pairs = Vec::new();
            let mut cursor = 10u64;
            for (i, (start, len)) in runs.iter().enumerate() {
                let s = cursor.max(*start);
                let e = (s + len).min(99);
                if s > 99 || e < s {
                    break;
                }
                let v = realize(inner, extents, salt.wrapping_add(i as u64 * 13)).1;
                pairs.push((Interval::from_ticks(s, e), v));
                cursor = e + 2;
            }
            let h = TemporalValue::from_pairs(pairs).expect("disjoint by construction");
            (Type::temporal(t), Value::Temporal(h))
        }
        Shape::Null(inner) => {
            let (t, _) = realize(inner, extents, salt);
            (t, Value::Null)
        }
    }
}

/// Generalize a type by walking up the subtype order: returns some `T'`
/// with `T ≤_T T'`.
fn generalize(db: &Database, t: &Type, choice: u64) -> Type {
    match t {
        Type::Object(c) => {
            let sups = db.schema().superclasses_of(c);
            if sups.is_empty() {
                t.clone()
            } else {
                Type::Object(sups[(choice as usize) % sups.len()].clone())
            }
        }
        Type::Set(x) => Type::set_of(generalize(db, x, choice)),
        Type::List(x) => Type::list_of(generalize(db, x, choice)),
        Type::Temporal(x) => Type::temporal(generalize(db, x, choice)),
        Type::Record(fs) => {
            // Drop one field (width) and generalize the rest (depth).
            let keep: Vec<(tchimera_core::AttrName, Type)> = fs
                .iter()
                .enumerate()
                .filter(|(i, _)| fs.len() == 1 || *i != (choice as usize) % fs.len())
                .map(|(i, (n, ft))| (n.clone(), generalize(db, ft, choice.wrapping_add(i as u64))))
                .collect();
            Type::Record(keep)
        }
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 3.1 + 3.2 on generated members: the value is in the
    /// extension of its generating type, and inference returns a subtype.
    #[test]
    fn typing_soundness_and_completeness(shape in arb_shape(3), salt in 0u64..1000, at in 10u64..100) {
        let (db, extents, _) = build_db();
        let (ty, v) = realize(&shape, &extents, salt);
        let at = Instant(at);
        // Completeness precondition: v ∈ [[T]]_t by construction.
        prop_assert!(
            db.value_in_type(&v, &ty, at),
            "generated value {v} not in its type {ty} at {at}"
        );
        // Inference (Definition 3.6).
        match db.infer_type(&v, at) {
            Ok(Some(inferred)) => {
                // Theorem 3.1: the deduced type contains the value.
                prop_assert!(
                    db.value_in_type(&v, &inferred, at),
                    "soundness: {v} not in inferred {inferred}"
                );
                // Theorem 3.2: the deduced type entails membership in the
                // generating type via subsumption.
                prop_assert!(
                    db.schema().is_subtype(&inferred, &ty),
                    "completeness: inferred {inferred} not ≤ {ty}"
                );
            }
            Ok(None) => {
                // Null / empty collections: values of every type.
            }
            Err(e) => prop_assert!(false, "inference failed on generated value: {e}"),
        }
    }

    /// Theorem 6.1: `T1 ≤_T T2 ⇒ [[T1]]_t ⊆ [[T2]]_t`, witnessed over
    /// generated members of `T1` and a generalization `T2`.
    #[test]
    fn extension_inclusion(shape in arb_shape(3), salt in 0u64..1000, choice in 0u64..8, at in 10u64..100) {
        let (db, extents, _) = build_db();
        let (t1, v) = realize(&shape, &extents, salt);
        let t2 = generalize(&db, &t1, choice);
        prop_assert!(db.schema().is_subtype(&t1, &t2), "{t1} not ≤ {t2}");
        let at = Instant(at);
        prop_assert!(db.value_in_type(&v, &t1, at));
        prop_assert!(
            db.value_in_type(&v, &t2, at),
            "Theorem 6.1 violated: {v} ∈ [[{t1}]] but ∉ [[{t2}]]"
        );
    }

    /// Subtyping is reflexive and transitive on generated types (poset
    /// sanity backing Definition 6.1).
    #[test]
    fn subtyping_is_a_preorder(shape in arb_shape(2), c1 in 0u64..8, c2 in 0u64..8) {
        let (db, extents, _) = build_db();
        let (t1, _) = realize(&shape, &extents, 0);
        let t2 = generalize(&db, &t1, c1);
        let t3 = generalize(&db, &t2, c2);
        prop_assert!(db.schema().is_subtype(&t1, &t1));
        prop_assert!(db.schema().is_subtype(&t1, &t2));
        prop_assert!(db.schema().is_subtype(&t2, &t3));
        prop_assert!(db.schema().is_subtype(&t1, &t3), "transitivity failed");
    }

    /// The lub (when defined) is an upper bound and contains both values
    /// (the property Definition 3.6 needs for heterogeneous collections).
    #[test]
    fn lub_upper_bound(s1 in arb_shape(2), s2 in arb_shape(2), at in 10u64..100) {
        let (db, extents, _) = build_db();
        let (t1, v1) = realize(&s1, &extents, 1);
        let (t2, v2) = realize(&s2, &extents, 2);
        if let Some(l) = db.schema().lub(&t1, &t2) {
            prop_assert!(db.schema().is_subtype(&t1, &l));
            prop_assert!(db.schema().is_subtype(&t2, &l));
            let at = Instant(at);
            prop_assert!(db.value_in_type(&v1, &l, at));
            prop_assert!(db.value_in_type(&v2, &l, at));
        }
    }
}

/// Inference on values containing the migrating object must still be sound
/// (the run-coverage lub logic).
#[test]
fn soundness_with_migrating_object() {
    let (db, _, migrant) = build_db();
    // A run spanning the migration (t=50).
    let h = TemporalValue::from_pairs([(Interval::from_ticks(20, 80), Value::Oid(migrant))])
        .unwrap();
    let v = Value::Temporal(h);
    let at = Instant(90);
    let inferred = db.infer_type(&v, at).unwrap().unwrap();
    assert_eq!(inferred, Type::temporal(Type::object("employee")));
    assert!(db.value_in_type(&v, &inferred, at));
    // A run after the migration types to manager.
    let h2 = TemporalValue::from_pairs([(Interval::from_ticks(60, 80), Value::Oid(migrant))])
        .unwrap();
    let v2 = Value::Temporal(h2);
    let inferred2 = db.infer_type(&v2, at).unwrap().unwrap();
    assert_eq!(inferred2, Type::temporal(Type::object("manager")));
    assert!(db.value_in_type(&v2, &inferred2, at));
}
