//! Property tests over random operation sequences: every reachable
//! database state satisfies the paper's invariants (5.1, 5.2, 6.1, 6.2),
//! is consistent (Definitions 5.5/5.6), and the equality notions respect
//! their implication chain (Section 5.3).

use proptest::prelude::*;
use tchimera_core::{
    attrs, Attrs, ClassDef, ClassId, Database, Equality, ModelError, Oid, Type, Value,
};

/// One step of a random workload.
#[derive(Clone, Debug)]
enum Op {
    Tick(u64),
    Create { class: usize },
    SetSalary { target: usize, value: i64 },
    SetAddress { target: usize, value: i64 },
    Migrate { target: usize, class: usize },
    Terminate { target: usize },
}

const CLASSES: [&str; 5] = ["person", "employee", "manager", "student", "vehicle"];

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..5).prop_map(Op::Tick),
        (0usize..CLASSES.len()).prop_map(|class| Op::Create { class }),
        (0usize..16, -50i64..50).prop_map(|(target, value)| Op::SetSalary { target, value }),
        (0usize..16, 0i64..50).prop_map(|(target, value)| Op::SetAddress { target, value }),
        (0usize..16, 0usize..CLASSES.len())
            .prop_map(|(target, class)| Op::Migrate { target, class }),
        (0usize..16).prop_map(|target| Op::Terminate { target }),
    ]
}

fn build_schema(db: &mut Database) {
    db.define_class(ClassDef::new("person").attr("address", Type::STRING))
        .unwrap();
    db.define_class(
        ClassDef::new("employee")
            .isa("person")
            .attr("salary", Type::temporal(Type::INTEGER)),
    )
    .unwrap();
    db.define_class(ClassDef::new("manager").isa("employee")).unwrap();
    db.define_class(ClassDef::new("student").isa("person")).unwrap();
    db.define_class(ClassDef::new("vehicle")).unwrap();
}

/// Run a workload, ignoring expected rejections (dead objects, cross-
/// hierarchy migrations, type errors): what matters is that no *accepted*
/// operation ever leaves the database in a state violating the model.
fn run_ops(ops: &[Op]) -> (Database, Vec<Oid>) {
    let mut db = Database::new();
    build_schema(&mut db);
    let mut oids: Vec<Oid> = Vec::new();
    for op in ops {
        match op {
            Op::Tick(n) => {
                db.tick_by(*n);
            }
            Op::Create { class } => {
                let cid = ClassId::from(CLASSES[*class]);
                let init = if CLASSES[*class] == "employee" || CLASSES[*class] == "manager" {
                    attrs([("salary", Value::Int(100))])
                } else {
                    Attrs::new()
                };
                match db.create_object(&cid, init) {
                    Ok(i) => oids.push(i),
                    Err(e) => panic!("create must not fail: {e}"),
                }
            }
            Op::SetSalary { target, value } => {
                if let Some(&i) = oids.get(target % oids.len().max(1)) {
                    match db.set_attr(i, &"salary".into(), Value::Int(*value)) {
                        Ok(()) => {}
                        Err(
                            ModelError::ObjectDead(_)
                            | ModelError::UnknownAttribute { .. }
                            | ModelError::History(_),
                        ) => {}
                        Err(e) => panic!("unexpected set_attr error: {e}"),
                    }
                }
            }
            Op::SetAddress { target, value } => {
                if let Some(&i) = oids.get(target % oids.len().max(1)) {
                    match db.set_attr(i, &"address".into(), Value::str(format!("a{value}"))) {
                        Ok(())
                        | Err(
                            ModelError::ObjectDead(_) | ModelError::UnknownAttribute { .. },
                        ) => {}
                        Err(e) => panic!("unexpected set_attr error: {e}"),
                    }
                }
            }
            Op::Migrate { target, class } => {
                if let Some(&i) = oids.get(target % oids.len().max(1)) {
                    let cid = ClassId::from(CLASSES[*class]);
                    let init = if CLASSES[*class] == "employee" || CLASSES[*class] == "manager"
                    {
                        attrs([("salary", Value::Int(1))])
                    } else {
                        Attrs::new()
                    };
                    match db.migrate(i, &cid, init) {
                        Ok(())
                        | Err(
                            ModelError::ObjectDead(_)
                            | ModelError::CrossHierarchyMigration { .. }
                            | ModelError::History(_),
                        ) => {}
                        Err(e) => panic!("unexpected migrate error: {e}"),
                    }
                }
            }
            Op::Terminate { target } => {
                if let Some(&i) = oids.get(target % oids.len().max(1)) {
                    match db.terminate_object(i) {
                        Ok(()) | Err(ModelError::ObjectDead(_)) => {}
                        Err(e) => panic!("unexpected terminate error: {e}"),
                    }
                }
            }
        }
    }
    (db, oids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reachable state satisfies Invariants 5.1, 5.2, 6.1, 6.2.
    #[test]
    fn invariants_hold_on_reachable_states(ops in prop::collection::vec(arb_op(), 1..60)) {
        let (db, _) = run_ops(&ops);
        let violations = db.check_invariants();
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// Every reachable state is consistent per Definitions 5.5 and 5.6
    /// (all objects consistent; referential integrity — the workload never
    /// stores object references, so it must hold trivially).
    #[test]
    fn consistency_holds_on_reachable_states(ops in prop::collection::vec(arb_op(), 1..60)) {
        let (db, _) = run_ops(&ops);
        let report = db.check_database();
        prop_assert!(report.is_consistent(), "violations: {:?}", report.errors);
    }

    /// The equality implication chain (Section 5.3): identity ⇒ value ⇒
    /// instantaneous ⇒ weak, over every pair of live generated objects.
    #[test]
    fn equality_implication_chain(ops in prop::collection::vec(arb_op(), 1..40)) {
        let (db, oids) = run_ops(&ops);
        for &a in oids.iter().take(6) {
            for &b in oids.iter().take(6) {
                if db.eq_identity(a, b) {
                    prop_assert!(db.eq_value(a, b).unwrap(), "identity ⇏ value for {a},{b}");
                }
                if db.eq_value(a, b).unwrap() {
                    // Value equality implies instantaneous equality when a
                    // comparison instant exists: the lifespans must
                    // overlap (Definition 5.9 quantifies over the
                    // intersection), and for objects with static
                    // attributes snapshots are only defined at `now`
                    // (Section 5.3), so `now` must lie in the overlap.
                    let la = db.o_lifespan(a).unwrap();
                    let lb = db.o_lifespan(b).unwrap();
                    let now = db.now();
                    let common = la.resolve(now).intersect(lb.resolve(now));
                    let has_static = db.object(a).unwrap().has_static_attrs()
                        || db.object(b).unwrap().has_static_attrs();
                    let comparable =
                        !common.is_empty() && (!has_static || common.contains(now));
                    if comparable {
                        prop_assert!(
                            db.eq_instantaneous(a, b).unwrap().is_some(),
                            "value ⇏ instantaneous for {a},{b}"
                        );
                    }
                }
                if db.eq_instantaneous(a, b).unwrap().is_some() {
                    prop_assert!(
                        db.eq_weak(a, b).unwrap().is_some(),
                        "instantaneous ⇏ weak for {a},{b}"
                    );
                }
                // strongest_equality agrees with the individual tests.
                let s = db.strongest_equality(a, b).unwrap();
                match s {
                    Some(Equality::Identity) => prop_assert!(a == b),
                    Some(Equality::Value) => {
                        prop_assert!(db.eq_value(a, b).unwrap() && a != b)
                    }
                    Some(Equality::Instantaneous) => {
                        prop_assert!(!db.eq_value(a, b).unwrap());
                        prop_assert!(db.eq_instantaneous(a, b).unwrap().is_some());
                    }
                    Some(Equality::Weak) => {
                        prop_assert!(db.eq_instantaneous(a, b).unwrap().is_none());
                        prop_assert!(db.eq_weak(a, b).unwrap().is_some());
                    }
                    None => prop_assert!(db.eq_weak(a, b).unwrap().is_none()),
                }
            }
        }
    }

    /// Class histories and extents remain mutually derivable: `π(c, t)`
    /// agrees with the objects' class histories at sampled instants
    /// (the ⇔ of Invariant 5.2 condition 2, checked extensionally).
    #[test]
    fn pi_agrees_with_class_histories(ops in prop::collection::vec(arb_op(), 1..50), t in 0u64..60) {
        let (db, oids) = run_ops(&ops);
        let t = tchimera_core::Instant(t.min(db.now().ticks()));
        for class in CLASSES {
            let cid = ClassId::from(class);
            let ext = db.pi(&cid, t).unwrap();
            for &i in &oids {
                let o = db.object(i).unwrap();
                let member_by_history = o
                    .class_at(t, db.now())
                    .map(|c| db.schema().is_subclass(c, &cid))
                    .unwrap_or(false);
                prop_assert_eq!(
                    ext.contains(&i),
                    member_by_history,
                    "π({}, {}) disagrees with class history of {}", &cid, t, i
                );
            }
        }
    }
}
