//! Concurrency properties of the metrics layer: instruments are shared
//! process-wide and recorded with relaxed atomics, so totals must come
//! out *exact* — not approximately right — when hammered from every
//! rayon worker at once.

use rayon::prelude::*;
use tchimera_core::obs;

#[test]
fn counter_is_exact_under_parallel_hammer() {
    let c = obs::registry().counter("test.hammer.counter");
    let items: Vec<u64> = (0..100_000).collect();
    items.par_iter().for_each(|_| c.inc());
    assert_eq!(c.get(), 100_000);
    // add() from every worker: the total is the exact series sum.
    items.par_iter().for_each(|&x| c.add(x));
    assert_eq!(c.get(), 100_000 + (0..100_000u64).sum::<u64>());
}

#[test]
fn gauge_adjustments_commute() {
    let g = obs::registry().gauge("test.hammer.gauge");
    let items: Vec<i64> = (0..10_000).collect();
    items.par_iter().for_each(|_| g.adjust(3));
    items.par_iter().for_each(|_| g.adjust(-2));
    assert_eq!(g.get(), 10_000);
}

#[test]
fn histogram_count_sum_and_max_are_exact_under_parallel_hammer() {
    let h = obs::registry().histogram("test.hammer.histogram");
    let items: Vec<u64> = (1..=50_000).collect();
    items.par_iter().for_each(|&x| h.record(x));
    assert_eq!(h.count(), 50_000);
    assert_eq!(h.sum(), (1..=50_000u64).sum::<u64>());
    assert_eq!(h.max(), 50_000);
    // Every recorded value landed in exactly one bucket.
    let bucketed: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
    assert_eq!(bucketed, 50_000);
}

#[test]
fn registry_returns_the_same_instrument_from_every_worker() {
    let items: Vec<u64> = (0..1_000).collect();
    // Racing first-registration from many workers must converge on one
    // instrument: the total reflects every increment.
    items
        .par_iter()
        .for_each(|_| obs::registry().counter("test.hammer.race").inc());
    assert_eq!(obs::registry().counter("test.hammer.race").get(), 1_000);
}
