//! Equivalence properties of the indexed engines: under arbitrary
//! operation sequences, the time-sorted extent index, the
//! reverse-reference index and the parallel consistency checker must be
//! observationally identical to their naive linear-scan / serial
//! counterparts.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tchimera_core::{
    Attrs, ClassDef, ClassId, ConsistencyError, Database, Instant, Oid, Type, Value,
};

/// One step of a random workload. Unlike the model properties, this
/// workload stores *object references* (temporal and static) so the
/// reverse-reference index is exercised.
#[derive(Clone, Debug)]
enum Op {
    Tick(u64),
    Create { class: usize },
    SetFriend { target: usize, friend: usize },
    SetOwner { target: usize, owner: usize },
    Migrate { target: usize, class: usize },
    Terminate { target: usize },
}

const CLASSES: [&str; 4] = ["person", "employee", "manager", "vehicle"];

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..4).prop_map(Op::Tick),
        (0usize..CLASSES.len()).prop_map(|class| Op::Create { class }),
        (0usize..16, 0usize..16)
            .prop_map(|(target, friend)| Op::SetFriend { target, friend }),
        (0usize..16, 0usize..16).prop_map(|(target, owner)| Op::SetOwner { target, owner }),
        (0usize..16, 0usize..CLASSES.len())
            .prop_map(|(target, class)| Op::Migrate { target, class }),
        (0usize..16).prop_map(|target| Op::Terminate { target }),
    ]
}

fn build_schema(db: &mut Database) {
    db.define_class(
        ClassDef::new("person").attr("friend", Type::temporal(Type::object("person"))),
    )
    .unwrap();
    db.define_class(ClassDef::new("employee").isa("person")).unwrap();
    db.define_class(ClassDef::new("manager").isa("employee")).unwrap();
    db.define_class(ClassDef::new("vehicle").attr("owner", Type::object("person")))
        .unwrap();
}

/// Run a workload. Rejected operations (dead objects, type errors on a
/// reference to a non-person, cross-hierarchy migrations, …) are simply
/// skipped: the properties quantify over whatever states are reachable.
fn run_ops(ops: &[Op]) -> (Database, Vec<Oid>) {
    let mut db = Database::new();
    build_schema(&mut db);
    let mut oids: Vec<Oid> = Vec::new();
    for op in ops {
        match op {
            Op::Tick(n) => {
                db.tick_by(*n);
            }
            Op::Create { class } => {
                let i = db
                    .create_object(&ClassId::from(CLASSES[*class]), Attrs::new())
                    .expect("create must not fail");
                oids.push(i);
            }
            Op::SetFriend { target, friend } => {
                let (Some(&t), Some(&f)) = (
                    oids.get(target % oids.len().max(1)),
                    oids.get(friend % oids.len().max(1)),
                ) else {
                    continue;
                };
                let _ = db.set_attr(t, &"friend".into(), Value::Oid(f));
            }
            Op::SetOwner { target, owner } => {
                let (Some(&t), Some(&o)) = (
                    oids.get(target % oids.len().max(1)),
                    oids.get(owner % oids.len().max(1)),
                ) else {
                    continue;
                };
                let _ = db.set_attr(t, &"owner".into(), Value::Oid(o));
            }
            Op::Migrate { target, class } => {
                if let Some(&t) = oids.get(target % oids.len().max(1)) {
                    let _ = db.migrate(t, &ClassId::from(CLASSES[*class]), Attrs::new());
                }
            }
            Op::Terminate { target } => {
                if let Some(&t) = oids.get(target % oids.len().max(1)) {
                    let _ = db.terminate_object(t);
                }
            }
        }
    }
    (db, oids)
}

/// Naive reverse-reference computation: scan every object's state.
fn referrers_by_scan(db: &Database, target: Oid) -> Vec<Oid> {
    let mut v: Vec<Oid> = db
        .objects()
        .filter(|o| o.all_refs().contains(&target))
        .map(|o| o.oid)
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The indexed extent queries equal the linear scans at every probed
    /// instant and window, for every class (`π`, proper extents, DURING).
    #[test]
    fn extent_index_equals_scan(
        ops in prop::collection::vec(arb_op(), 1..80),
        probes in prop::collection::vec((0u64..80, 0u64..80), 4),
    ) {
        let (db, _) = run_ops(&ops);
        let now = db.now();
        for class in CLASSES {
            let c = db.class(&ClassId::from(class)).unwrap();
            for &(a, b) in &probes {
                let t = Instant(a);
                prop_assert_eq!(
                    c.ext_at(t, now),
                    c.ext_at_scan(t, now),
                    "ext_at diverged for `{}` at {:?}", class, t
                );
                prop_assert_eq!(
                    c.proper_ext_at(t, now),
                    c.proper_ext_at_scan(t, now),
                    "proper_ext_at diverged for `{}` at {:?}", class, t
                );
                let (lo, hi) = (Instant(a.min(b)), Instant(a.max(b)));
                prop_assert_eq!(
                    c.ext_during(lo, hi, now),
                    c.ext_during_scan(lo, hi, now),
                    "ext_during diverged for `{}` over [{:?},{:?}]", class, lo, hi
                );
            }
        }
    }

    /// The extent index agrees with the per-oid membership histories:
    /// `i ∈ ext(c, t)` iff `t ∈ c_lifespan(i, c)`.
    #[test]
    fn extent_index_agrees_with_membership(
        ops in prop::collection::vec(arb_op(), 1..60),
        t in 0u64..70,
    ) {
        let (db, oids) = run_ops(&ops);
        let now = db.now();
        let t = Instant(t);
        for class in CLASSES {
            let c = db.class(&ClassId::from(class)).unwrap();
            let ext = c.ext_at(t, now);
            for &i in &oids {
                prop_assert_eq!(
                    ext.contains(&i),
                    t <= now && c.membership_of(i, now).contains(t),
                    "index ↮ membership_of for {} in `{}` at {:?}", i, class, t
                );
            }
        }
    }

    /// The reverse-reference index equals a full-database scan, and the
    /// `O(affected)` incoming-reference check reports exactly the
    /// dangling references to the target that the global referential
    /// integrity check reports.
    #[test]
    fn reverse_reference_index_equals_scan(ops in prop::collection::vec(arb_op(), 1..80)) {
        let (db, oids) = run_ops(&ops);
        let global = db.check_referential_integrity();
        let targets: BTreeSet<Oid> = oids.iter().copied().collect();
        for &target in &targets {
            prop_assert_eq!(
                db.referrers_of(target),
                referrers_by_scan(&db, target),
                "referrers_of({}) diverged", target
            );
            let filtered: Vec<ConsistencyError> = global
                .errors
                .iter()
                .filter(|e| matches!(
                    e,
                    ConsistencyError::DanglingReference { target: t, .. } if *t == target
                ))
                .cloned()
                .collect();
            prop_assert_eq!(
                db.check_refs_to(target).errors,
                filtered,
                "check_refs_to({}) diverged from the global check", target
            );
            // The post-mutation combinator reports exactly the global
            // errors touching `target` (either side), each once.
            let mut around: Vec<String> = db
                .check_refs_around(target)
                .errors
                .iter()
                .map(|e| format!("{e:?}"))
                .collect();
            around.sort();
            let mut expected: Vec<String> = global
                .errors
                .iter()
                .filter(|e| matches!(
                    e,
                    ConsistencyError::DanglingReference { oid, target: t, .. }
                        if *oid == target || *t == target
                ))
                .map(|e| format!("{e:?}"))
                .collect();
            expected.sort();
            prop_assert_eq!(around, expected, "check_refs_around({}) diverged", target);
        }
        // The per-object outgoing checks compose to the global one.
        let mut composed: Vec<ConsistencyError> = Vec::new();
        for o in db.objects() {
            composed.extend(db.check_object_refs(o.oid).unwrap().errors);
        }
        prop_assert_eq!(composed, global.errors);
    }

    /// The (by default parallel) database checker returns the same
    /// report — same errors, same order — as the serial reference, both
    /// on consistent databases and on fault-injected ones.
    #[test]
    fn parallel_check_equals_serial(ops in prop::collection::vec(arb_op(), 1..80)) {
        let (mut db, oids) = run_ops(&ops);
        prop_assert_eq!(db.check_database().errors, db.check_database_serial().errors);
        // Inject a fault: corrupt one object's friend history with a
        // wrongly-typed value, bypassing validation.
        if let Some(&victim) = oids.first() {
            let mut broken = db.object(victim).unwrap().clone();
            broken.attrs.insert(
                "friend".into(),
                Value::Temporal(tchimera_core::TemporalValue::starting_at(
                    Instant(0),
                    Value::Int(-1),
                )),
            );
            db.replace_object_for_test(broken);
            let par = db.check_database();
            let ser = db.check_database_serial();
            prop_assert_eq!(par.errors, ser.errors);
        }
    }
}
