//! Scrubber properties: under arbitrary reachable workloads a full
//! scrub cycle on an *uncorrupted* database always reports clean and is
//! an observable no-op — and after a seeded in-memory corruption
//! (`SimMem`), one cycle detects it and rung-1 repair restores query
//! answers to scan equivalence.
//!
//! The properties are feature-agnostic: CI runs them under both the
//! rayon (parallel consistency sweep) and serial core builds.

use proptest::prelude::*;
use tchimera_core::{Attrs, ClassDef, ClassId, Database, Oid, SimMem, Type, Value};

/// One step of a random workload (create / set_attr / migrate /
/// terminate / tick), reference-bearing so the refindex is exercised.
#[derive(Clone, Debug)]
enum Op {
    Tick(u64),
    Create { class: usize },
    SetFriend { target: usize, friend: usize },
    SetName { target: usize, n: u8 },
    Migrate { target: usize, class: usize },
    Terminate { target: usize },
}

const CLASSES: [&str; 3] = ["person", "employee", "manager"];

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..4).prop_map(Op::Tick),
        (0usize..CLASSES.len()).prop_map(|class| Op::Create { class }),
        (0usize..12, 0usize..12)
            .prop_map(|(target, friend)| Op::SetFriend { target, friend }),
        (0usize..12, any::<u8>()).prop_map(|(target, n)| Op::SetName { target, n }),
        (0usize..12, 0usize..CLASSES.len())
            .prop_map(|(target, class)| Op::Migrate { target, class }),
        (0usize..12).prop_map(|target| Op::Terminate { target }),
    ]
}

fn build_schema(db: &mut Database) {
    db.define_class(
        ClassDef::new("person")
            .attr("name", Type::temporal(Type::STRING))
            .attr("friend", Type::temporal(Type::object("person"))),
    )
    .unwrap();
    db.define_class(ClassDef::new("employee").isa("person")).unwrap();
    db.define_class(ClassDef::new("manager").isa("employee")).unwrap();
}

/// Run a workload; rejected operations are skipped (the properties
/// quantify over whatever states are reachable).
fn run_ops(ops: &[Op]) -> (Database, Vec<Oid>) {
    let mut db = Database::new();
    build_schema(&mut db);
    let mut oids: Vec<Oid> = Vec::new();
    for op in ops {
        match op {
            Op::Tick(n) => {
                db.tick_by(*n);
            }
            Op::Create { class } => {
                let i = db
                    .create_object(&ClassId::from(CLASSES[*class]), Attrs::new())
                    .expect("create must not fail");
                oids.push(i);
            }
            Op::SetFriend { target, friend } => {
                let (Some(&t), Some(&f)) = (
                    oids.get(target % oids.len().max(1)),
                    oids.get(friend % oids.len().max(1)),
                ) else {
                    continue;
                };
                // Only reference live objects: the model checks
                // reference consistency (Definition 5.6) rather than
                // enforcing it, and these properties quantify over
                // *consistent* reachable states.
                if db.object(f).map(|o| o.lifespan.is_alive()) != Ok(true) {
                    continue;
                }
                let _ = db.set_attr(t, &"friend".into(), Value::Oid(f));
            }
            Op::SetName { target, n } => {
                if let Some(&t) = oids.get(target % oids.len().max(1)) {
                    let _ = db.set_attr(t, &"name".into(), Value::str(format!("n{n}")));
                }
            }
            Op::Migrate { target, class } => {
                if let Some(&t) = oids.get(target % oids.len().max(1)) {
                    let _ = db.migrate(t, &ClassId::from(CLASSES[*class]), Attrs::new());
                }
            }
            Op::Terminate { target } => {
                if let Some(&t) = oids.get(target % oids.len().max(1)) {
                    // Fresh instant, then null referrers, so termination
                    // keeps the database consistent (no dangling
                    // references, historical or current).
                    db.tick_by(1);
                    let referrers: Vec<Oid> = db.referrers_of(t);
                    for r in referrers {
                        if r != t && db.object(r).map(|o| o.lifespan.is_alive()) == Ok(true) {
                            let _ = db.set_attr(r, &"friend".into(), Value::Null);
                        }
                    }
                    let _ = db.terminate_object(t);
                }
            }
        }
    }
    (db, oids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On an uncorrupted database, a full scrub cycle is clean and an
    /// observable no-op: the exported state image is identical before
    /// and after, and so is every repeated cycle.
    #[test]
    fn clean_scrub_is_a_clean_noop(ops in prop::collection::vec(arb_op(), 1..80)) {
        let (mut db, _) = run_ops(&ops);
        let before = db.export_state();
        let report = db.scrub_cycle();
        prop_assert!(report.clean(), "uncorrupted database reported dirty: {report:?}");
        prop_assert!(report.findings.is_empty());
        prop_assert_eq!(
            db.export_state(), before,
            "a clean scrub must not change observable state"
        );
        prop_assert!(db.quarantine().is_empty());
        // Idempotence: scrubbing a just-scrubbed database is also clean.
        let again = db.scrub_cycle();
        prop_assert!(again.clean());
    }

    /// A budget-limited scrub of an uncorrupted database never reports a
    /// divergence and never mutates state, no matter where it stops.
    #[test]
    fn budgeted_clean_scrub_never_lies(
        ops in prop::collection::vec(arb_op(), 1..60),
        cap in 0u64..20,
    ) {
        let (mut db, _) = run_ops(&ops);
        let before = db.export_state();
        let mut steps = 0u64;
        let report = db.scrub_cycle_with(&mut |_| { steps += 1; steps <= cap });
        prop_assert_eq!(report.divergences, 0, "partial scrub invented a divergence");
        prop_assert_eq!(db.export_state(), before);
    }

    /// After one seeded in-memory corruption of a derived structure, a
    /// full cycle detects it, repairs in place, and restores the
    /// database to export-identical health.
    #[test]
    fn corrupted_scrub_detects_and_repairs(
        ops in prop::collection::vec(arb_op(), 4..60),
        seed in any::<u64>(),
    ) {
        let (mut db, _) = run_ops(&ops);
        let before = db.export_state();
        let mut sim = SimMem::new(seed);
        prop_assert!(sim.corrupt_index(&mut db).is_some());
        let report = db.scrub_cycle();
        prop_assert!(
            report.divergences >= 1,
            "seeded corruption escaped a full cycle: {report:?}"
        );
        prop_assert!(report.fully_repaired(), "rung-1 damage not repaired: {report:?}");
        prop_assert_eq!(
            db.export_state(), before,
            "repair must restore the exact observable state"
        );
        prop_assert!(db.scrub_cycle().clean());
    }
}
