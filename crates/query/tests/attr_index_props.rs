//! Attribute-value index equivalence properties (DESIGN.md §13): for
//! randomly generated databases and index-heavy queries, the executor
//! with index narrowing enabled returns exactly the rows — values *and*
//! order — of the reference evaluator and of the scan path
//! (`use_index: false`), across `NOW`, `AS OF` and `DURING` scopes and
//! regardless of partitioning or parallelism.
//!
//! The index is deliberately activated *mid-workload* (a warm probe
//! after a prefix of the mutations), so the remaining `set_attr` churn,
//! terminations and migrations exercise the incremental maintenance
//! hooks rather than a one-shot lazy build over final state. A
//! deterministic test also checks that DDL between probes invalidates
//! the cache and never serves stale candidates.

use proptest::prelude::*;
use tchimera_core::{attrs, Attrs, ClassDef, ClassId, Database, Instant, Oid, Type, Value};
use tchimera_query::ast::{CmpOp, Expr, Literal, Projection, Select, TimeSpec};
use tchimera_query::exec::{execute_plan, ExecOptions};
use tchimera_query::plan::plan_select;
use tchimera_query::{check_select, eval_select_naive};

/// One mutation step, decoded from a seed tuple.
type OpSeed = (u8, i64, u8, u8);
/// One WHERE conjunct, decoded from a seed tuple.
type ConjSeed = (u8, u8, u8, i64, u64);

const VAR_NAMES: [&str; 3] = ["x", "y", "z"];

/// Same shape as the planner properties: `emp` with a temporal integer
/// `a`, a static integer `b` and a temporal reference `r`; `mgr` isa
/// `emp` with nothing of its own, so migrations never drop attributes
/// and evaluation stays total.
fn define_schema(db: &mut Database) {
    db.define_class(
        ClassDef::new("emp")
            .attr("a", Type::temporal(Type::INTEGER))
            .attr("b", Type::INTEGER)
            .attr("r", Type::temporal(Type::object("emp"))),
    )
    .unwrap();
    db.define_class(ClassDef::new("mgr").isa("emp")).unwrap();
}

fn apply_op(db: &mut Database, oids: &mut Vec<Oid>, op: OpSeed) {
    let (kind, x, y, z) = op;
    let pick = |oids: &[Oid], sel: u8| -> Option<Oid> {
        (!oids.is_empty()).then(|| oids[sel as usize % oids.len()])
    };
    match kind {
        0..=2 => {
            let base = attrs([("a", Value::Int(x)), ("b", Value::Int(x.rem_euclid(3)))]);
            let mut init = base.clone();
            if let Some(tgt) = pick(oids, y) {
                init.insert("r".into(), Value::Oid(tgt));
            }
            let oid = db
                .create_object(&ClassId::from("emp"), init)
                .or_else(|_| db.create_object(&ClassId::from("emp"), base))
                .unwrap();
            oids.push(oid);
        }
        3 => {
            if let Some(o) = pick(oids, y) {
                let _ = db.set_attr(o, &"a".into(), Value::Int(x));
            }
        }
        4 => {
            if let (Some(o), Some(tgt)) = (pick(oids, y), pick(oids, z)) {
                let _ = db.set_attr(o, &"r".into(), Value::Oid(tgt));
            }
        }
        5 => {
            if let Some(o) = pick(oids, y) {
                let _ = db.migrate(o, &ClassId::from("mgr"), Attrs::new());
            }
        }
        6 => {
            if let Some(o) = pick(oids, y) {
                let _ = db.terminate_object(o);
            }
        }
        _ => {
            db.tick_by(u64::from(z % 3) + 1);
        }
    }
}

/// A minimal probe-triggering query: `select x from emp x where x.a = 0`.
/// Running it through the planned pipeline with the index enabled builds
/// (and thereby *activates*) the attribute-value index on `a`, so every
/// later mutation exercises the incremental write hooks.
fn warm_index(db: &Database) {
    let q = Select {
        projections: vec![("x".to_owned(), Projection::Var)],
        vars: vec![(ClassId::from("emp"), "x".to_owned())],
        time: TimeSpec::Now,
        filter: Some(Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Attr("x".into(), "a".into())),
            Box::new(Expr::Lit(Literal::Int(0))),
        )),
        order: None,
        limit: None,
    };
    let plan = plan_select(&q);
    execute_plan(db, &plan, &ExecOptions::default()).expect("warm probe is total");
}

fn eq_a(v: usize, k: i64) -> Expr {
    Expr::Cmp(
        CmpOp::Eq,
        Box::new(Expr::Attr(VAR_NAMES[v].into(), "a".into())),
        Box::new(Expr::Lit(Literal::Int(k))),
    )
}

/// Decode one conjunct; weighted toward index-eligible shapes.
fn conjunct(seed: ConjSeed, n: usize) -> Expr {
    let (kind, rv, ru, k, t) = seed;
    let v = rv as usize % n;
    let u = ru as usize % n;
    match kind {
        // Membership `Or`-chain on the indexed attribute.
        0 => Expr::Or(Box::new(eq_a(v, k)), Box::new(eq_a(v, k + 1))),
        // Point probe `v.a at t = k`.
        1 => Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::AttrAt(VAR_NAMES[v].into(), "a".into(), t % 24)),
            Box::new(Expr::Lit(Literal::Int(k))),
        ),
        // Reference join — index narrowing must still seed join order
        // correctly (falls back to an equality when unary).
        2 if n > 1 && u != v => Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Attr(VAR_NAMES[v].into(), "r".into())),
            Box::new(Expr::Var(VAR_NAMES[u].into())),
        ),
        // Uncovered: static attribute (scan fallback)...
        3 => Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Attr(VAR_NAMES[v].into(), "b".into())),
            Box::new(Expr::Lit(Literal::Int(k.rem_euclid(3)))),
        ),
        // ...negation (not an index shape, still routed as prefilter)...
        4 => Expr::Not(Box::new(eq_a(v, k))),
        // ...and a membership test.
        5 => Expr::IsMember(VAR_NAMES[v].into(), ClassId::from("mgr")),
        // Plain indexed equality (the common case).
        _ => eq_a(v, k),
    }
}

fn build_query(nvars: usize, vclasses: &[u8], time: (u8, u64, u64), conjs: &[ConjSeed]) -> Select {
    let vars: Vec<(ClassId, String)> = (0..nvars)
        .map(|i| {
            let class = if vclasses[i] == 0 { "emp" } else { "mgr" };
            (ClassId::from(class), VAR_NAMES[i].to_owned())
        })
        .collect();
    let time = match time.0 {
        0 => TimeSpec::Now,
        1 => TimeSpec::AsOf(time.1),
        _ => TimeSpec::During(time.1, time.1 + time.2),
    };
    let filter = conjs
        .iter()
        .map(|&seed| conjunct(seed, nvars))
        .reduce(|acc, c| Expr::And(Box::new(acc), Box::new(c)));
    let projections = vec![
        (VAR_NAMES[0].to_owned(), Projection::Var),
        (VAR_NAMES[0].to_owned(), Projection::Attr("a".into())),
    ];
    Select { projections, vars, time, filter, order: None, limit: None }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Index narrowing is row-for-row identical to both the reference
    /// evaluator and the scan path, with the index kept hot through
    /// `set_attr` churn, terminations and migrations.
    #[test]
    fn index_matches_scan_under_churn(
        ops in prop::collection::vec((0u8..8, -2i64..4, 0u8..16, 0u8..8), 6..36),
        warm_frac in 0usize..4,
        nvars in 1usize..4,
        vclasses in prop::collection::vec(0u8..2, 3),
        time in (0u8..3, 0u64..20, 0u64..16),
        conjs in prop::collection::vec((0u8..7, 0u8..3, 0u8..3, -2i64..4, 0u64..24), 1..3),
    ) {
        let mut db = Database::new();
        define_schema(&mut db);
        db.advance_to(Instant(1)).unwrap();
        let mut oids = Vec::new();
        // Activate the index after a random prefix of the workload so
        // the suffix runs through the incremental maintenance hooks.
        let warm_at = ops.len() * warm_frac / 4;
        for (i, &op) in ops.iter().enumerate() {
            if i == warm_at {
                warm_index(&db);
            }
            apply_op(&mut db, &mut oids, op);
        }
        db.tick_by(2);

        let q = build_query(nvars, &vclasses, time, &conjs);
        if check_select(db.schema(), &q).is_ok() {
            let naive = eval_select_naive(&db, &q).expect("workload is total");
            let plan = plan_select(&q);
            for opts in [
                ExecOptions::default(),
                ExecOptions { parallel: false, partitions: Some(1), ..Default::default() },
                ExecOptions { parallel: false, partitions: Some(3), ..Default::default() },
                ExecOptions { use_index: false, ..Default::default() },
            ] {
                let (r, _) = execute_plan(&db, &plan, &opts).expect("workload is total");
                prop_assert_eq!(&r.rows, &naive.rows);
            }
        }
    }
}

/// DDL between probes bumps the schema generation; the next probe must
/// rebuild rather than serve candidates indexed under the old schema.
#[test]
fn ddl_invalidation_never_serves_stale_candidates() {
    let mut db = Database::new();
    define_schema(&mut db);
    db.advance_to(Instant(1)).unwrap();
    let mut oids = Vec::new();
    for i in 0..20 {
        apply_op(&mut db, &mut oids, (0, i % 4, 0, 0));
    }
    warm_index(&db);

    // DDL bumps the generation while the cache is hot...
    db.define_class(ClassDef::new("dept")).unwrap();
    // ...and further churn lands while the stale cache is still live.
    db.tick_by(1);
    for (i, &o) in oids.iter().enumerate() {
        if i % 3 == 0 {
            db.set_attr(o, &"a".into(), Value::Int(9)).unwrap();
        }
    }
    db.tick_by(1);

    let q = build_query(1, &[0], (0, 0, 0), &[(6, 0, 0, 9, 0)]);
    let naive = eval_select_naive(&db, &q).expect("total");
    let plan = plan_select(&q);
    let (indexed, stats) =
        execute_plan(&db, &plan, &ExecOptions::default()).expect("total");
    assert_eq!(indexed.rows, naive.rows);
    // The probe went through the index (not a silent fallback) and saw
    // the post-DDL, post-churn state.
    assert_eq!(stats.vars[0].indexed, Some(indexed.rows.len()));
}
