//! Property tests for the TCQL front end: the lexer/parser never panic on
//! arbitrary input, and generated well-formed queries parse and type-check.

use proptest::prelude::*;
use tchimera_query::{parse, parse_script};

proptest! {
    /// Total on garbage: any string either parses or errors — no panics.
    #[test]
    fn parser_is_total(src in ".{0,200}") {
        let _ = parse(&src);
        let _ = parse_script(&src);
    }

    /// Total on token-shaped garbage (higher hit rate on deep parser
    /// paths than raw unicode).
    #[test]
    fn parser_is_total_on_tokens(words in prop::collection::vec(
        prop_oneof![
            Just("select".to_owned()), Just("from".to_owned()),
            Just("where".to_owned()), Just("define".to_owned()),
            Just("class".to_owned()), Just("history".to_owned()),
            Just("of".to_owned()), Just("(".to_owned()), Just(")".to_owned()),
            Just(",".to_owned()), Just(";".to_owned()), Just(":=".to_owned()),
            Just("#3".to_owned()), Just("'s'".to_owned()), Just("42".to_owned()),
            Just("e".to_owned()), Just("e.x".to_owned()), Just("always".to_owned()),
            Just("during".to_owned()), Just("[".to_owned()), Just("]".to_owned()),
            Just("temporal".to_owned()), Just("integer".to_owned()),
        ], 0..24))
    {
        let src = words.join(" ");
        let _ = parse(&src);
        let _ = parse_script(&src);
    }

    /// Generated well-formed selects round-trip through parse + check.
    #[test]
    fn generated_selects_parse(
        class in "[a-z]{1,8}",
        var in "[a-z]{1,3}",
        attr in "[a-z]{1,6}",
        lo in 0u64..100,
        len in 0u64..100,
        sal in -100i64..100,
    ) {
        let q1 = format!("select {var}, {var}.{attr} from {class} {var} where {var}.{attr} >= {sal}");
        let q2 = format!("select history of {var}.{attr} from {class} {var} during [{lo}, {}]", lo + len);
        let q3 = format!("select count({var}) from {class} {var} as of {lo} where sometime({var}.{attr} = {sal})");
        for q in [q1, q2, q3] {
            parse(&q).unwrap_or_else(|e| panic!("{q} failed: {e}"));
        }
    }
}
