//! Property tests for the governed query path: the full pipeline
//! (parse → typecheck → plan → execute) is total on arbitrary input.
//! Every statement either succeeds or returns a typed error — no panics
//! escape, even under a tiny budget that trips mid-execution.

use proptest::prelude::*;
use tchimera_query::{ExecBudget, Interpreter, QueryError};

/// A small populated interpreter so garbage that *does* parse has real
/// classes and objects to chew on.
fn seeded() -> Interpreter {
    let mut interp = Interpreter::new();
    interp
        .run_script(
            "define class e (v: integer, s: temporal(string)); \
             advance to 1; \
             create e (v := 1, s := 'a'); \
             create e (v := 2, s := 'b'); \
             tick 5; \
             set #0.v := 7;",
        )
        .expect("seed script");
    interp
}

proptest! {
    /// Total on garbage: arbitrary strings through the whole governed
    /// pipeline produce Ok or a typed error, never a panic.
    #[test]
    fn pipeline_is_total_on_garbage(src in ".{0,200}") {
        let mut interp = seeded();
        let _ = interp.run(&src);
        let _ = interp.run_script(&src);
    }

    /// Total on token-shaped garbage that names real classes and
    /// attributes — far higher hit rate on typecheck/plan/exec paths.
    #[test]
    fn pipeline_is_total_on_tokens(words in prop::collection::vec(
        prop_oneof![
            Just("select".to_owned()), Just("from".to_owned()),
            Just("where".to_owned()), Just("e".to_owned()),
            Just("x".to_owned()), Just("x.v".to_owned()),
            Just("x.s".to_owned()), Just("count".to_owned()),
            Just("history".to_owned()), Just("snapshot".to_owned()),
            Just("of".to_owned()), Just("as".to_owned()),
            Just("sometime".to_owned()), Just("always".to_owned()),
            Just("during".to_owned()), Just("and".to_owned()),
            Just("or".to_owned()), Just("not".to_owned()),
            Just("(".to_owned()), Just(")".to_owned()),
            Just("[".to_owned()), Just("]".to_owned()),
            Just(",".to_owned()), Just(";".to_owned()),
            Just("=".to_owned()), Just(">=".to_owned()),
            Just("#0".to_owned()), Just("'a'".to_owned()),
            Just("1".to_owned()), Just("7".to_owned()),
        ], 0..32))
    {
        let mut interp = seeded();
        let src = words.join(" ");
        let _ = interp.run(&src);
        let _ = interp.run_script(&src);
    }

    /// Well-formed selects under a tiny budget either finish or report
    /// BudgetExceeded/Cancelled — and the session stays usable after.
    #[test]
    fn tiny_budgets_fail_closed(
        max_bindings in 0u64..64,
        max_cost in 0u64..64,
        lo in 0u64..12,
        len in 0u64..12,
    ) {
        let mut interp = seeded();
        interp.set_budget(ExecBudget {
            max_bindings,
            max_cost,
            ..ExecBudget::default()
        });
        let queries = [
            "select x, y from e x, e y where x.v = y.v".to_owned(),
            format!("select history of x.s from e x during [{lo}, {}]", lo + len),
            "select count(x) from e x where sometime(x.v = 7)".to_owned(),
        ];
        for q in queries {
            match interp.run(&q) {
                Ok(_)
                | Err(QueryError::BudgetExceeded { .. })
                | Err(QueryError::Cancelled { .. }) => {}
                Err(e) => panic!("{q} failed unexpectedly: {e}"),
            }
        }
        // The governor must release its permit and leave the session live.
        interp.set_budget(ExecBudget::default());
        let out = interp.run("select count(x) from e x");
        prop_assert!(out.is_ok(), "session wedged after budget errors: {out:?}");
    }
}
