//! Planner/executor equivalence properties: for randomly generated
//! databases and well-typed queries, the planned pipeline
//! ([`tchimera_query::execute_plan`]) returns exactly the rows — values
//! *and* order — of the reference evaluator
//! ([`tchimera_query::eval_select_naive`]), across `NOW`, `AS OF` and
//! `DURING` scopes, and regardless of partitioning or parallelism.
//!
//! The generated workload is *total*: every attribute evaluation is
//! defined (missing histories read as `null`, comparisons are total), so
//! planner/naive conjunct reordering cannot surface divergent errors —
//! any result mismatch is a genuine planner bug.

use proptest::prelude::*;
use tchimera_core::{attrs, Attrs, ClassDef, ClassId, Database, Instant, Oid, Type, Value};
use tchimera_query::ast::{CmpOp, Expr, Literal, OrderBy, Projection, Select, TimeSpec};
use tchimera_query::exec::{execute_plan, ExecOptions};
use tchimera_query::plan::plan_select;
use tchimera_query::{check_select, eval_select, eval_select_naive};

/// One mutation step, decoded from a seed tuple.
type OpSeed = (u8, i64, u8, u8);
/// One WHERE conjunct, decoded from a seed tuple.
type ConjSeed = (u8, u8, u8, i64, u8);

const VAR_NAMES: [&str; 3] = ["x", "y", "z"];

/// Two classes: `emp` with a temporal integer, a static integer drawn
/// from a tiny domain (duplicate sort keys) and a temporal reference, and
/// `mgr` isa `emp` with no attributes of its own — so `emp ↔ mgr`
/// migrations never drop attributes and evaluation stays total.
fn build_db(ops: &[OpSeed]) -> Database {
    let mut db = Database::new();
    db.define_class(
        ClassDef::new("emp")
            .attr("a", Type::temporal(Type::INTEGER))
            .attr("b", Type::INTEGER)
            .attr("r", Type::temporal(Type::object("emp"))),
    )
    .unwrap();
    db.define_class(ClassDef::new("mgr").isa("emp")).unwrap();
    db.advance_to(Instant(1)).unwrap();
    let mut oids: Vec<Oid> = Vec::new();
    for &(kind, x, y, z) in ops {
        let pick = |sel: u8| -> Option<Oid> {
            (!oids.is_empty()).then(|| oids[sel as usize % oids.len()])
        };
        match kind {
            0..=2 => {
                let base = attrs([("a", Value::Int(x)), ("b", Value::Int(x.rem_euclid(3)))]);
                let mut init = base.clone();
                if let Some(tgt) = pick(y) {
                    init.insert("r".into(), Value::Oid(tgt));
                }
                // The reference target may be rejected (e.g. terminated);
                // fall back to creating without one.
                let oid = db
                    .create_object(&ClassId::from("emp"), init)
                    .or_else(|_| db.create_object(&ClassId::from("emp"), base))
                    .unwrap();
                oids.push(oid);
            }
            3 => {
                if let Some(o) = pick(y) {
                    // May fail (terminated object); irrelevant to equivalence.
                    let _ = db.set_attr(o, &"a".into(), Value::Int(x));
                }
            }
            4 => {
                if let (Some(o), Some(tgt)) = (pick(y), pick(z)) {
                    let _ = db.set_attr(o, &"r".into(), Value::Oid(tgt));
                }
            }
            5 => {
                if let Some(o) = pick(y) {
                    let _ = db.migrate(o, &ClassId::from("mgr"), Attrs::new());
                }
            }
            6 => {
                if let Some(o) = pick(y) {
                    let _ = db.terminate_object(o);
                }
            }
            _ => {
                db.tick_by(u64::from(z % 3) + 1);
            }
        }
    }
    db.tick_by(2);
    db
}

fn cmp_op(sel: u8) -> CmpOp {
    [CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][sel as usize % 6]
}

fn attr_cmp(v: usize, op: u8, k: i64) -> Expr {
    Expr::Cmp(
        cmp_op(op),
        Box::new(Expr::Attr(VAR_NAMES[v].into(), "a".into())),
        Box::new(Expr::Lit(Literal::Int(k))),
    )
}

/// Decode one conjunct; `n` is the number of range variables.
fn conjunct(seed: ConjSeed, n: usize) -> Expr {
    let (kind, rv, ru, k, op) = seed;
    let v = rv as usize % n;
    let u = ru as usize % n;
    match kind {
        // Reference join `v.r = u` (falls back to an attr test when the
        // query has one variable).
        0 if n > 1 && u != v => Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Attr(VAR_NAMES[v].into(), "r".into())),
            Box::new(Expr::Var(VAR_NAMES[u].into())),
        ),
        // Attribute equi-join `v.a = u.a`.
        1 if n > 1 && u != v => Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Attr(VAR_NAMES[v].into(), "a".into())),
            Box::new(Expr::Attr(VAR_NAMES[u].into(), "a".into())),
        ),
        // Static small-domain test (duplicate keys, pushdown fodder).
        2 => Expr::Cmp(
            cmp_op(op),
            Box::new(Expr::Attr(VAR_NAMES[v].into(), "b".into())),
            Box::new(Expr::Lit(Literal::Int(k.rem_euclid(3)))),
        ),
        // Temporal quantifiers.
        3 => Expr::Sometime(Box::new(attr_cmp(v, op, k))),
        4 => Expr::Always(Box::new(attr_cmp(v, op, k))),
        // Boolean structure around total comparisons.
        5 => Expr::Not(Box::new(attr_cmp(v, op, k))),
        6 => Expr::Or(
            Box::new(attr_cmp(v, op, k)),
            Box::new(Expr::Defined(Box::new(Expr::Attr(
                VAR_NAMES[u].into(),
                "r".into(),
            )))),
        ),
        7 => Expr::IsMember(VAR_NAMES[v].into(), ClassId::from("mgr")),
        _ => attr_cmp(v, op, k),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_query(
    nvars: usize,
    vclasses: &[u8],
    time: (u8, u64, u64),
    conjs: &[ConjSeed],
    projs: &[(u8, u8)],
    order: (u8, u8, u8),
    limit: (u8, u64),
) -> Select {
    let vars: Vec<(ClassId, String)> = (0..nvars)
        .map(|i| {
            let class = if vclasses[i] == 0 { "emp" } else { "mgr" };
            (ClassId::from(class), VAR_NAMES[i].to_owned())
        })
        .collect();
    let time = match time.0 {
        0 => TimeSpec::Now,
        1 => TimeSpec::AsOf(time.1),
        _ => TimeSpec::During(time.1, time.1 + time.2),
    };
    let filter = conjs
        .iter()
        .map(|&seed| conjunct(seed, nvars))
        .reduce(|acc, c| Expr::And(Box::new(acc), Box::new(c)));
    let projections: Vec<(String, Projection)> = if projs[0].1 == 6 {
        vec![(VAR_NAMES[projs[0].0 as usize % nvars].to_owned(), Projection::Count)]
    } else {
        projs
            .iter()
            .map(|&(pv, pk)| {
                let var = VAR_NAMES[pv as usize % nvars].to_owned();
                let p = match pk {
                    0 => Projection::Var,
                    1 => Projection::Attr("a".into()),
                    2 => Projection::Attr("b".into()),
                    3 => Projection::ClassOf,
                    4 => Projection::LifespanOf,
                    _ => Projection::HistoryOf("a".into()),
                };
                (var, p)
            })
            .collect()
    };
    let order = (order.0 > 0).then(|| OrderBy {
        var: VAR_NAMES[order.1 as usize % nvars].to_owned(),
        attr: if order.2 == 0 { "a".into() } else { "b".into() },
        desc: order.0 == 2,
    });
    let limit = (limit.0 > 0).then_some(limit.1);
    Select { projections, vars, time, filter, order, limit }
}

/// Regression: when two classes tie on extent size, the candidate order
/// must not depend on declaration order or hash iteration — ties break
/// deterministically by class name.
#[test]
fn extent_size_ties_order_by_class_name() {
    let mut db = Database::new();
    // Declare the lexicographically *larger* class first so a
    // declaration-order tie-break would pick the wrong variable.
    db.define_class(ClassDef::new("zeta").attr("a", Type::temporal(Type::INTEGER))).unwrap();
    db.define_class(ClassDef::new("beta").attr("a", Type::temporal(Type::INTEGER))).unwrap();
    db.advance_to(Instant(1)).unwrap();
    for i in 0..5 {
        db.create_object(&ClassId::from("zeta"), attrs([("a", Value::Int(i))])).unwrap();
        db.create_object(&ClassId::from("beta"), attrs([("a", Value::Int(i))])).unwrap();
    }
    db.tick_by(1);
    let q = Select {
        projections: vec![("x".to_owned(), Projection::Var)],
        vars: vec![
            (ClassId::from("zeta"), "x".to_owned()),
            (ClassId::from("beta"), "y".to_owned()),
        ],
        time: TimeSpec::Now,
        filter: None,
        order: None,
        limit: None,
    };
    let plan = plan_select(&q);
    for _ in 0..8 {
        let (_, stats) = execute_plan(&db, &plan, &ExecOptions::default()).unwrap();
        assert_eq!(stats.order, vec![1, 0], "tie must resolve to 'beta' before 'zeta'");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The planned pipeline is row-for-row identical to the reference
    /// evaluator, and insensitive to partition boundaries and rayon.
    #[test]
    fn planner_matches_naive_evaluator(
        ops in prop::collection::vec((0u8..8, -2i64..4, 0u8..16, 0u8..8), 4..36),
        nvars in 1usize..4,
        vclasses in prop::collection::vec(0u8..2, 3),
        time in (0u8..3, 0u64..20, 0u64..16),
        conjs in prop::collection::vec((0u8..9, 0u8..3, 0u8..3, -2i64..4, 0u8..6), 0..3),
        projs in prop::collection::vec((0u8..3, 0u8..7), 1..3),
        order in (0u8..3, 0u8..3, 0u8..2),
        limit in (0u8..2, 0u64..5),
    ) {
        let db = build_db(&ops);
        let q = build_query(nvars, &vclasses, time, &conjs, &projs, order, limit);
        // Skip seeds decoding to ill-typed queries (e.g. COUNT + ORDER
        // BY); equivalence only speaks about typed queries. No `return`
        // here — the proptest shim inlines the body into its case loop.
        if check_select(db.schema(), &q).is_ok() {
            let naive = eval_select_naive(&db, &q).expect("workload is total");
            let planned = eval_select(&db, &q).expect("workload is total");
            prop_assert_eq!(&planned.columns, &naive.columns);
            prop_assert_eq!(&planned.rows, &naive.rows);

            // Partition boundaries and parallelism must not reorder rows.
            let plan = plan_select(&q);
            for opts in [
                ExecOptions { parallel: false, partitions: Some(1), ..Default::default() },
                ExecOptions { parallel: false, partitions: Some(3), ..Default::default() },
                ExecOptions::default(),
            ] {
                let (r, _) = execute_plan(&db, &plan, &opts).expect("workload is total");
                prop_assert_eq!(&r.rows, &naive.rows);
            }
        }
    }
}
