//! Static type checking of TCQL queries against the schema.
//!
//! The paper lists "issues related to the query language and its typing"
//! as future work (Section 7); this checker applies the paper's machinery
//! — attribute domains, `T⁻`, subtyping and lubs (Definitions 3.6/6.1) —
//! to reject ill-typed queries before execution.

use std::fmt;

use tchimera_core::{AttrName, ClassId, Schema, Type};

use crate::ast::{CmpOp, Expr, Literal, Projection, Select, TimeSpec};

/// A static type error in a query.
#[derive(Clone, PartialEq, Debug)]
pub enum TypeError {
    /// The ranged class does not exist.
    UnknownClass(ClassId),
    /// The class does not declare the attribute.
    UnknownAttribute {
        /// Ranged class.
        class: ClassId,
        /// Missing attribute.
        attr: AttrName,
    },
    /// `HISTORY OF` / `AT` applied to a non-temporal attribute.
    NotTemporal {
        /// The attribute.
        attr: AttrName,
    },
    /// `SNAPSHOT OF` in the past on a class with static attributes —
    /// undefined by Section 5.3.
    SnapshotUndefinedInPast {
        /// The ranged class.
        class: ClassId,
    },
    /// Comparison between incompatible types.
    Incomparable {
        /// Left-hand type rendering.
        left: String,
        /// Right-hand type rendering.
        right: String,
    },
    /// Ordering comparison on an unordered type.
    Unordered {
        /// The offending type rendering.
        ty: String,
    },
    /// A boolean connective applied to a non-boolean operand.
    NotBoolean {
        /// The offending type rendering.
        ty: String,
    },
    /// The filter itself is not boolean.
    FilterNotBoolean,
    /// `COUNT` mixed with other projections.
    CountNotAlone,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            TypeError::UnknownAttribute { class, attr } => {
                write!(f, "class `{class}` has no attribute `{attr}`")
            }
            TypeError::NotTemporal { attr } => {
                write!(f, "attribute `{attr}` is not temporal (no history)")
            }
            TypeError::SnapshotUndefinedInPast { class } => write!(
                f,
                "snapshot in the past is undefined for `{class}` (it has static attributes, Section 5.3)"
            ),
            TypeError::Incomparable { left, right } => {
                write!(f, "cannot compare `{left}` with `{right}`")
            }
            TypeError::Unordered { ty } => write!(f, "type `{ty}` has no ordering"),
            TypeError::NotBoolean { ty } => {
                write!(f, "expected bool, found `{ty}`")
            }
            TypeError::FilterNotBoolean => write!(f, "WHERE filter must be boolean"),
            TypeError::CountNotAlone => {
                write!(f, "count(…) must be the only projection")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// The checker's type lattice: a statically-known type, the type of `null`
/// (every type), or an object of statically unknown class (oid literals).
#[derive(Clone, PartialEq, Debug)]
pub enum Ty {
    /// Fits every type.
    Any,
    /// Some object type, class unknown until runtime.
    AnyObject,
    /// A known T_Chimera type.
    Known(Type),
}

impl Ty {
    fn render(&self) -> String {
        match self {
            Ty::Any => "null".into(),
            Ty::AnyObject => "object".into(),
            Ty::Known(t) => t.to_string(),
        }
    }
}

/// The typing context of a query: each range variable with its class.
pub type VarContext = [(String, ClassId)];

/// Check a `SELECT` statement; returns the result column types.
pub fn check_select(schema: &Schema, q: &Select) -> Result<Vec<Ty>, TypeError> {
    // Resolve every range variable's class first.
    let mut ctx: Vec<(String, ClassId)> = Vec::with_capacity(q.vars.len());
    for (class, var) in &q.vars {
        schema
            .class(class)
            .map_err(|_| TypeError::UnknownClass(class.clone()))?;
        ctx.push((var.clone(), class.clone()));
    }

    let mut columns = Vec::new();
    for (var, p) in &q.projections {
        let class_id = q
            .class_of(var)
            .expect("validated by the parser")
            .clone();
        let class = schema
            .class(&class_id)
            .map_err(|_| TypeError::UnknownClass(class_id.clone()))?;
        let ty = match p {
            Projection::Var => Ty::Known(Type::Object(class_id.clone())),
            Projection::Attr(a) => {
                let decl = class.attr(a).ok_or_else(|| TypeError::UnknownAttribute {
                    class: class_id.clone(),
                    attr: a.clone(),
                })?;
                // A projected temporal attribute yields its instant value.
                Ty::Known(
                    decl.ty
                        .strip_temporal()
                        .cloned()
                        .unwrap_or_else(|| decl.ty.clone()),
                )
            }
            Projection::HistoryOf(a) => {
                let decl = class.attr(a).ok_or_else(|| TypeError::UnknownAttribute {
                    class: class_id.clone(),
                    attr: a.clone(),
                })?;
                if !decl.ty.is_temporal() {
                    return Err(TypeError::NotTemporal { attr: a.clone() });
                }
                Ty::Known(decl.ty.clone())
            }
            Projection::SnapshotOf => {
                let in_past = !matches!(q.time, TimeSpec::Now);
                if in_past && class.static_type().is_some() {
                    return Err(TypeError::SnapshotUndefinedInPast {
                        class: class_id.clone(),
                    });
                }
                Ty::Known(class.structural_type())
            }
            Projection::ClassOf => Ty::Known(Type::STRING),
            Projection::LifespanOf => Ty::Known(Type::record_of([
                ("start", Type::Time),
                ("end", Type::Time),
            ])),
            Projection::Count => {
                if q.projections.len() != 1 {
                    return Err(TypeError::CountNotAlone);
                }
                Ty::Known(Type::INTEGER)
            }
        };
        columns.push(ty);
    }

    if let Some(filter) = &q.filter {
        let t = check_expr(schema, &ctx, filter)?;
        if !matches!(t, Ty::Any | Ty::Known(Type::Basic(tchimera_core::BasicType::Bool))) {
            return Err(TypeError::FilterNotBoolean);
        }
    }
    if let Some(order) = &q.order {
        if matches!(q.projections.as_slice(), [(_, Projection::Count)]) {
            return Err(TypeError::CountNotAlone);
        }
        let t = check_expr(
            schema,
            &ctx,
            &Expr::Attr(order.var.clone(), order.attr.clone()),
        )?;
        if let Ty::Known(ty) = &t {
            if !matches!(ty, Type::Basic(_) | Type::Time) {
                return Err(TypeError::Unordered { ty: t.render() });
            }
        }
    }
    Ok(columns)
}

fn class_of<'c>(ctx: &'c VarContext, var: &str) -> &'c ClassId {
    &ctx.iter()
        .find(|(v, _)| v == var)
        .expect("validated by the parser")
        .1
}

/// Type an expression relative to the variable context.
pub fn check_expr(schema: &Schema, ctx: &VarContext, e: &Expr) -> Result<Ty, TypeError> {
    match e {
        Expr::Lit(l) => Ok(type_literal(l)),
        Expr::Var(v) => Ok(Ty::Known(Type::Object(class_of(ctx, v).clone()))),
        Expr::Attr(v, a) => {
            let class = class_of(ctx, v);
            let cl = schema
                .class(class)
                .map_err(|_| TypeError::UnknownClass(class.clone()))?;
            let decl = cl.attr(a).ok_or_else(|| TypeError::UnknownAttribute {
                class: class.clone(),
                attr: a.clone(),
            })?;
            Ok(Ty::Known(
                decl.ty
                    .strip_temporal()
                    .cloned()
                    .unwrap_or_else(|| decl.ty.clone()),
            ))
        }
        Expr::AttrAt(v, a, _) => {
            let class = class_of(ctx, v);
            let cl = schema
                .class(class)
                .map_err(|_| TypeError::UnknownClass(class.clone()))?;
            let decl = cl.attr(a).ok_or_else(|| TypeError::UnknownAttribute {
                class: class.clone(),
                attr: a.clone(),
            })?;
            let inner = decl
                .ty
                .strip_temporal()
                .ok_or_else(|| TypeError::NotTemporal { attr: a.clone() })?;
            Ok(Ty::Known(inner.clone()))
        }
        Expr::Defined(inner) => {
            check_expr(schema, ctx, inner)?;
            Ok(Ty::Known(Type::BOOL))
        }
        Expr::Cmp(op, l, r) => {
            let lt = check_expr(schema, ctx, l)?;
            let rt = check_expr(schema, ctx, r)?;
            if !comparable(schema, &lt, &rt) {
                return Err(TypeError::Incomparable {
                    left: lt.render(),
                    right: rt.render(),
                });
            }
            if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                for t in [&lt, &rt] {
                    if let Ty::Known(ty) = t {
                        let ordered = matches!(ty, Type::Basic(_) | Type::Time);
                        if !ordered {
                            return Err(TypeError::Unordered { ty: t.render() });
                        }
                    }
                }
            }
            Ok(Ty::Known(Type::BOOL))
        }
        Expr::And(l, r) | Expr::Or(l, r) => {
            for side in [l, r] {
                let t = check_expr(schema, ctx, side)?;
                if !matches!(t, Ty::Any | Ty::Known(Type::Basic(tchimera_core::BasicType::Bool)))
                {
                    return Err(TypeError::NotBoolean { ty: t.render() });
                }
            }
            Ok(Ty::Known(Type::BOOL))
        }
        Expr::Not(inner) | Expr::Always(inner) | Expr::Sometime(inner) => {
            let t = check_expr(schema, ctx, inner)?;
            if !matches!(t, Ty::Any | Ty::Known(Type::Basic(tchimera_core::BasicType::Bool))) {
                return Err(TypeError::NotBoolean { ty: t.render() });
            }
            Ok(Ty::Known(Type::BOOL))
        }
        Expr::IsMember(_, c) => {
            if !schema.contains(c) {
                return Err(TypeError::UnknownClass(c.clone()));
            }
            Ok(Ty::Known(Type::BOOL))
        }
    }
}

/// The static type of a literal.
pub fn type_literal(l: &Literal) -> Ty {
    match l {
        Literal::Null => Ty::Any,
        Literal::Int(_) => Ty::Known(Type::INTEGER),
        Literal::Real(_) => Ty::Known(Type::REAL),
        Literal::Bool(_) => Ty::Known(Type::BOOL),
        Literal::Str(_) => Ty::Known(Type::STRING),
        Literal::Oid(_) => Ty::AnyObject,
        Literal::Set(xs) | Literal::List(xs) => {
            // Homogeneous literal collections get a known type; anything
            // else degrades to Any (checked at runtime against Def 3.5).
            let mut elem: Option<Ty> = None;
            for x in xs {
                let t = type_literal(x);
                match (&elem, &t) {
                    (None, _) => elem = Some(t),
                    (Some(a), b) if a == b => {}
                    _ => return Ty::Any,
                }
            }
            match elem {
                Some(Ty::Known(t)) => {
                    if matches!(l, Literal::Set(_)) {
                        Ty::Known(Type::set_of(t))
                    } else {
                        Ty::Known(Type::list_of(t))
                    }
                }
                _ => Ty::Any,
            }
        }
    }
}

/// Two checker types are comparable when one fits into the other —
/// equality, subtyping in either direction, or a common lub.
fn comparable(schema: &Schema, a: &Ty, b: &Ty) -> bool {
    match (a, b) {
        (Ty::Any, _) | (_, Ty::Any) => true,
        (Ty::AnyObject, Ty::AnyObject) => true,
        (Ty::AnyObject, Ty::Known(Type::Object(_)))
        | (Ty::Known(Type::Object(_)), Ty::AnyObject) => true,
        (Ty::AnyObject, _) | (_, Ty::AnyObject) => false,
        (Ty::Known(x), Ty::Known(y)) => {
            x == y
                || schema.is_subtype(x, y)
                || schema.is_subtype(y, x)
                || schema.lub(x, y).is_some()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use tchimera_core::ClassDef;
    use tchimera_core::Instant;

    fn schema() -> Schema {
        let mut s = Schema::new();
        let t0 = Instant(0);
        s.define(ClassDef::new("person"), t0).unwrap();
        s.define(
            ClassDef::new("employee")
                .isa("person")
                .attr("salary", Type::temporal(Type::INTEGER))
                .attr("grade", Type::INTEGER)
                .attr("boss", Type::object("employee")),
            t0,
        )
        .unwrap();
        s.define(
            ClassDef::new("log-entry").attr("reading", Type::temporal(Type::REAL)),
            t0,
        )
        .unwrap();
        s
    }

    fn select(src: &str) -> Select {
        match parse(src).unwrap() {
            crate::ast::Stmt::Select(s) => s,
            _ => unreachable!(),
        }
    }

    #[test]
    fn valid_queries_type() {
        let s = schema();
        let cols = check_select(
            &s,
            &select("select e, e.salary, history of e.salary, class of e, lifespan of e from employee e where e.salary >= 100 and e.grade = 2"),
        )
        .unwrap();
        assert_eq!(cols.len(), 5);
        assert_eq!(cols[0], Ty::Known(Type::object("employee")));
        assert_eq!(cols[1], Ty::Known(Type::INTEGER));
        assert_eq!(cols[2], Ty::Known(Type::temporal(Type::INTEGER)));
    }

    #[test]
    fn unknown_names_rejected() {
        let s = schema();
        assert_eq!(
            check_select(&s, &select("select g from ghost g")),
            Err(TypeError::UnknownClass(ClassId::from("ghost")))
        );
        assert!(matches!(
            check_select(&s, &select("select e.ghost from employee e")),
            Err(TypeError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            check_select(&s, &select("select e from employee e where e in ghost")),
            Err(TypeError::UnknownClass(_))
        ));
    }

    #[test]
    fn history_requires_temporal() {
        let s = schema();
        assert_eq!(
            check_select(&s, &select("select history of e.grade from employee e")),
            Err(TypeError::NotTemporal { attr: "grade".into() })
        );
        assert!(matches!(
            check_select(
                &s,
                &select("select e from employee e where e.grade at 5 = 1")
            ),
            Err(TypeError::NotTemporal { .. })
        ));
        // AT on a temporal attribute is fine.
        check_select(&s, &select("select e from employee e where e.salary at 5 = 1"))
            .unwrap();
    }

    #[test]
    fn snapshot_in_past_rules() {
        let s = schema();
        // employee has static attrs (grade, boss): past snapshot rejected.
        assert!(matches!(
            check_select(&s, &select("select snapshot of e from employee e as of 5")),
            Err(TypeError::SnapshotUndefinedInPast { .. })
        ));
        // now-snapshot fine.
        check_select(&s, &select("select snapshot of e from employee e")).unwrap();
        // Fully temporal class: past snapshot fine.
        check_select(&s, &select("select snapshot of x from log-entry x as of 5")).unwrap();
    }

    #[test]
    fn comparison_typing() {
        let s = schema();
        // integer vs string: incomparable.
        assert!(matches!(
            check_select(&s, &select("select e from employee e where e.salary = 'x'")),
            Err(TypeError::Incomparable { .. })
        ));
        // Object ordering is rejected.
        assert!(matches!(
            check_select(&s, &select("select e from employee e where e.boss < #3")),
            Err(TypeError::Unordered { .. })
        ));
        // Object equality with an oid literal is fine.
        check_select(&s, &select("select e from employee e where e.boss = #3")).unwrap();
        // null is comparable with anything.
        check_select(&s, &select("select e from employee e where e.boss = null")).unwrap();
    }

    #[test]
    fn boolean_contexts() {
        let s = schema();
        assert!(matches!(
            check_select(&s, &select("select e from employee e where e.grade")),
            Err(TypeError::FilterNotBoolean)
        ));
        assert!(matches!(
            check_select(
                &s,
                &select("select e from employee e where not (e.grade)")
            ),
            Err(TypeError::NotBoolean { .. })
        ));
        check_select(
            &s,
            &select("select e from employee e where sometime(e.salary > 10) and defined(e.boss)"),
        )
        .unwrap();
    }

    #[test]
    fn literal_typing() {
        assert_eq!(type_literal(&Literal::Null), Ty::Any);
        assert_eq!(type_literal(&Literal::Oid(3)), Ty::AnyObject);
        assert_eq!(
            type_literal(&Literal::Set(vec![Literal::Int(1), Literal::Int(2)])),
            Ty::Known(Type::set_of(Type::INTEGER))
        );
        assert_eq!(
            type_literal(&Literal::List(vec![Literal::Int(1), Literal::Str("x".into())])),
            Ty::Any
        );
        assert_eq!(type_literal(&Literal::Set(vec![])), Ty::Any);
    }

    #[test]
    fn error_display() {
        let e = TypeError::Incomparable {
            left: "integer".into(),
            right: "string".into(),
        };
        assert!(e.to_string().contains("integer"));
        assert!(TypeError::FilterNotBoolean.to_string().contains("WHERE"));
    }
}
