//! # tchimera-query
//!
//! **TCQL** — a typed temporal query, DDL and DML language for the
//! T_Chimera data model. The paper (Bertino, Ferrari, Guerrini — EDBT
//! 1996) lists "issues related to the query language and its typing" as
//! future work (Section 7); TCQL supplies a concrete design built on the
//! paper's own machinery: the type system of Section 3, the model
//! functions of Table 3 and the subtyping of Section 6.
//!
//! ```text
//! define class employee under person (salary: temporal(integer));
//! advance to 10;
//! create employee (salary := 100);
//! tick 10;
//! set #0.salary := 150;
//! select e, e.salary from employee e where sometime(e.salary = 100);
//! select snapshot of e from employee e as of 15;
//! select history of e.salary from employee e during [10, 20];
//! check consistency;
//! ```
//!
//! Pipeline: [`parser`] → [`typecheck`] → [`eval`], orchestrated by
//! [`Interpreter`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod eval;
pub mod exec;
pub mod governor;
pub mod interp;
pub mod parser;
pub mod plan;
pub mod replica;
pub mod token;
pub mod typecheck;

pub use ast::{CmpOp, Expr, Literal, Projection, Select, Stmt, TimeSpec};
pub use eval::{
    eval_select, eval_select_naive, touch_metrics, EvalError, QueryResult, QUERY_METRICS,
};
pub use exec::{execute_plan, ExecOptions, ExecStats};
pub use governor::{CancelToken, ExecBudget, Progress, Resource};
pub use interp::{Interpreter, Outcome, QueryError};
pub use parser::{parse, parse_script, ParseError, ParseErrorKind};
pub use plan::{plan_select, render_explain, IndexPred, PlanCache, PlannedQuery};
pub use replica::ReplicaSession;
pub use typecheck::{check_select, TypeError};
