//! The plan executor: runs a [`crate::plan::PlannedQuery`]
//! against a database, producing exactly the rows (and row order) of the
//! reference evaluator [`crate::eval::eval_select_naive`].
//!
//! Execution pipeline:
//!
//! 1. fetch each variable's candidate extent (via the extent indexes);
//! 2. resolve planned equality/membership predicates through the
//!    temporal attribute-value index (`Database::attr_index_probe`) where
//!    covered — the probe result is a superset that *narrows* the
//!    candidates the next step even looks at, falling back to the plain
//!    scan when uncovered;
//! 3. apply pushed-down prefilters per variable;
//! 4. order variables by (post-prefilter) candidate-set size, preferring
//!    variables hash-joinable to already-placed ones;
//! 5. build bindings level by level — hash join where an equality
//!    conjunct links the new variable to a placed one, nested loop
//!    otherwise — applying each residual conjunct at the earliest level
//!    where all its variables are bound;
//! 6. project surviving bindings, then restore the reference evaluator's
//!    enumeration order (each binding carries its candidate-position
//!    tuple in declaration order — its "naive key").
//!
//! The outermost level is partitioned and, with the default-on `rayon`
//! feature, partitions run in parallel; partitions are contiguous slices
//! of the (ordered) base candidates, so concatenating their outputs
//! preserves serial row order exactly.
//!
//! `LIMIT` without `ORDER BY` stops enumerating once `limit` bindings
//! survive (per partition); `ORDER BY … LIMIT k` keeps a bounded top-k
//! buffer instead of sorting every row.
//!
//! Error-surface caveat: the planner evaluates conjuncts in a different
//! order than the reference evaluator's left-to-right `AND`, so a query
//! whose filter *errors* (e.g. reading a static attribute dropped by a
//! migration) can surface the error from a different binding, or error
//! where short-circuiting would have hidden it. Index narrowing extends
//! the same caveat in the opposite direction: candidates the index rules
//! out are never evaluated at all, so a conjunct that would *error* on
//! such a candidate under the reference evaluator is skipped. Queries
//! over total predicates — everything the typechecker can see — are
//! exactly equivalent.

use std::collections::HashMap;

use tchimera_core::{
    AttrName, ClassId, Database, Instant, Interval, Oid, Value,
};

#[cfg(feature = "rayon")]
use rayon::prelude::*;

use crate::ast::{CmpOp, Expr, TimeSpec};
use crate::eval::{
    as_bool, compare, eval_projection, event_points_oids, projection_name,
    quantifier_scope_oids, EvalError, QueryResult,
};
use crate::governor::{approx_row_bytes, Charge, ExecBudget, Meter};
use crate::plan::PlannedQuery;

/// A compiled expression: [`Expr`] with variable names interned to
/// declaration indices, resolved once at plan time. Evaluation binds
/// variables through a plain `&[Oid]` slot slice — no per-binding string
/// comparisons or clones on the hot path.
#[derive(Clone, PartialEq, Debug)]
pub enum CExpr {
    /// A literal, lowered to a [`Value`] at compile time.
    Lit(Value),
    /// A range variable (by index) — evaluates to the bound oid.
    Var(usize),
    /// `var.attr` at the evaluation instant.
    Attr(usize, AttrName),
    /// `var.attr AT t`.
    AttrAt(usize, AttrName, u64),
    /// `DEFINED(e)`.
    Defined(Box<CExpr>),
    /// Comparison.
    Cmp(CmpOp, Box<CExpr>, Box<CExpr>),
    /// Conjunction (short-circuiting).
    And(Box<CExpr>, Box<CExpr>),
    /// Disjunction (short-circuiting).
    Or(Box<CExpr>, Box<CExpr>),
    /// Negation.
    Not(Box<CExpr>),
    /// `var IN class`.
    IsMember(usize, ClassId),
    /// `ALWAYS(e)` over the bound objects' common lifespan.
    Always(Box<CExpr>),
    /// `SOMETIME(e)` over that lifespan.
    Sometime(Box<CExpr>),
}

impl CExpr {
    /// Compile an [`Expr`], interning variable names against `vars`
    /// (the query's range variables in declaration order).
    #[must_use]
    pub fn compile(e: &Expr, vars: &[String]) -> CExpr {
        let idx = |v: &str| -> usize {
            vars.iter().position(|n| n == v).expect("validated by the parser")
        };
        match e {
            Expr::Lit(l) => CExpr::Lit(l.to_value()),
            Expr::Var(v) => CExpr::Var(idx(v)),
            Expr::Attr(v, a) => CExpr::Attr(idx(v), a.clone()),
            Expr::AttrAt(v, a, t) => CExpr::AttrAt(idx(v), a.clone(), *t),
            Expr::Defined(i) => CExpr::Defined(Box::new(CExpr::compile(i, vars))),
            Expr::Cmp(op, l, r) => CExpr::Cmp(
                *op,
                Box::new(CExpr::compile(l, vars)),
                Box::new(CExpr::compile(r, vars)),
            ),
            Expr::And(l, r) => CExpr::And(
                Box::new(CExpr::compile(l, vars)),
                Box::new(CExpr::compile(r, vars)),
            ),
            Expr::Or(l, r) => CExpr::Or(
                Box::new(CExpr::compile(l, vars)),
                Box::new(CExpr::compile(r, vars)),
            ),
            Expr::Not(i) => CExpr::Not(Box::new(CExpr::compile(i, vars))),
            Expr::IsMember(v, c) => CExpr::IsMember(idx(v), c.clone()),
            Expr::Always(i) => CExpr::Always(Box::new(CExpr::compile(i, vars))),
            Expr::Sometime(i) => CExpr::Sometime(Box::new(CExpr::compile(i, vars))),
        }
    }
}

/// Evaluate a compiled expression: `oids[i]` is the object bound to
/// variable `i` (only slots of variables the expression mentions are
/// read, except quantifiers, which scope over the full binding).
pub(crate) fn eval_cexpr(
    db: &Database,
    oids: &[Oid],
    t: Instant,
    now: Instant,
    e: &CExpr,
) -> Result<Value, EvalError> {
    Ok(match e {
        CExpr::Lit(v) => v.clone(),
        CExpr::Var(i) => Value::Oid(oids[*i]),
        CExpr::Attr(i, a) => db.attr_at(oids[*i], a, t)?,
        CExpr::AttrAt(i, a, at) => db.attr_at(oids[*i], a, Instant(*at))?,
        CExpr::Defined(inner) => {
            let v = eval_cexpr(db, oids, t, now, inner)?;
            Value::Bool(!v.is_null())
        }
        CExpr::Cmp(op, l, r) => {
            let lv = eval_cexpr(db, oids, t, now, l)?;
            let rv = eval_cexpr(db, oids, t, now, r)?;
            Value::Bool(compare(*op, &lv, &rv))
        }
        CExpr::And(l, r) => {
            let lv = as_bool(eval_cexpr(db, oids, t, now, l)?)?;
            if !lv {
                Value::Bool(false)
            } else {
                Value::Bool(as_bool(eval_cexpr(db, oids, t, now, r)?)?)
            }
        }
        CExpr::Or(l, r) => {
            let lv = as_bool(eval_cexpr(db, oids, t, now, l)?)?;
            if lv {
                Value::Bool(true)
            } else {
                Value::Bool(as_bool(eval_cexpr(db, oids, t, now, r)?)?)
            }
        }
        CExpr::Not(inner) => Value::Bool(!as_bool(eval_cexpr(db, oids, t, now, inner)?)?),
        CExpr::IsMember(i, c) => {
            let member = db
                .schema()
                .class(c)
                .map(|cl| cl.membership_of(oids[*i], now).contains(t))
                .unwrap_or(false);
            Value::Bool(member)
        }
        CExpr::Always(inner) => {
            let scope = quantifier_scope_oids(db, oids, t, now)?;
            let ok = event_points_oids(db, oids, scope, now)
                .into_iter()
                .try_fold(true, |acc, tp| {
                    Ok::<bool, EvalError>(
                        acc && as_bool(eval_cexpr(db, oids, tp, now, inner)?)?,
                    )
                })?;
            Value::Bool(ok)
        }
        CExpr::Sometime(inner) => {
            let scope = quantifier_scope_oids(db, oids, t, now)?;
            let mut ok = false;
            for tp in event_points_oids(db, oids, scope, now) {
                if as_bool(eval_cexpr(db, oids, tp, now, inner)?)? {
                    ok = true;
                    break;
                }
            }
            Value::Bool(ok)
        }
    })
}

/// Execution knobs. [`Default`] enables parallel partitioned scans when
/// the crate's `rayon` feature is on and picks a partition count from the
/// machine; tests override `partitions` to exercise boundaries
/// deterministically (the row order is identical either way).
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Run partitions in parallel (no-op without the `rayon` feature).
    pub parallel: bool,
    /// Fixed partition count for the outermost variable (`None` = auto).
    pub partitions: Option<usize>,
    /// Resource budget governing this execution (`None` = ungoverned;
    /// the interpreter always attaches one — see `DESIGN.md` §12).
    pub budget: Option<ExecBudget>,
    /// Seed candidate sets from the temporal attribute-value index where
    /// the plan recorded an [`crate::plan::IndexPred`] and the index
    /// covers it (default). Disable to force the pure scan path — rows
    /// are identical either way; only the candidates examined differ.
    pub use_index: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallel: cfg!(feature = "rayon"),
            partitions: None,
            budget: None,
            use_index: true,
        }
    }
}

/// Per-variable cardinalities for `EXPLAIN`.
#[derive(Clone, Debug)]
pub struct VarStats {
    /// Variable name.
    pub var: String,
    /// Class it ranges over.
    pub class: String,
    /// Raw extent size.
    pub extent: usize,
    /// Number of pushed-down conjuncts.
    pub pushed: usize,
    /// Candidates surviving the prefilters.
    pub after: usize,
    /// `Some(k)` when the attribute-value index seeded this variable's
    /// candidates: `k` is the size of the index-resolved candidate set
    /// (before intersecting with the extent). `None` = scan path.
    pub indexed: Option<usize>,
}

/// Per-level (variable placement) execution counts for `EXPLAIN`.
#[derive(Clone, Debug)]
pub struct LevelStats {
    /// Variable (declaration index) placed at this level.
    pub var: usize,
    /// `true` when the level probed a hash table.
    pub hash: bool,
    /// `true` for the outermost (scan) level.
    pub first: bool,
    /// Number of filter checks applied at this level.
    pub checks: usize,
    /// Candidate bindings examined.
    pub examined: u64,
    /// Bindings surviving the level.
    pub out: u64,
}

/// What the executor actually did — the substance of `EXPLAIN`.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Per-variable candidate statistics (declaration order).
    pub vars: Vec<VarStats>,
    /// Chosen variable order (declaration indices).
    pub order: Vec<usize>,
    /// Per-level counts, in placement order.
    pub levels: Vec<LevelStats>,
    /// Partition count used for the outermost level.
    pub partitions: usize,
    /// Result rows produced.
    pub rows: usize,
    /// Total candidate bindings examined across all levels.
    pub bindings: u64,
    /// Size of the full cross product the reference evaluator would
    /// enumerate.
    pub naive_bindings: u128,
}

/// A candidate object together with its position in the raw extent — the
/// position tuple (in declaration order) is the binding's "naive key",
/// used to restore the reference evaluator's enumeration order.
#[derive(Clone, Copy, Debug)]
struct Cand {
    oid: Oid,
    pos: u32,
}

/// One level of the binding pipeline: place `var`, probe `hash` (a join
/// index) if available, then apply `checks`.
struct Level {
    var: usize,
    hash: Option<usize>,
    checks: Vec<Check>,
}

#[derive(Clone, Copy)]
enum Check {
    Join(usize),
    Resid(usize),
}

/// A produced row before final ordering: the projected values, the
/// optional `ORDER BY` key and the naive-order key.
struct RowOut {
    key: Vec<u32>,
    oval: Option<Value>,
    row: Vec<Value>,
}

/// Per-partition output.
struct PartOut {
    rows: Vec<RowOut>,
    count: i64,
    levels: Vec<(u64, u64)>,
}

/// Flat storage for partial bindings: `n` oid slots and `n` naive-key
/// slots per row (copies, not per-binding allocations).
struct Partials {
    n: usize,
    oids: Vec<Oid>,
    keys: Vec<u32>,
}

impl Partials {
    fn new(n: usize) -> Partials {
        Partials { n, oids: Vec::new(), keys: Vec::new() }
    }

    fn len(&self) -> usize {
        self.oids.len().checked_div(self.n).unwrap_or(0)
    }

    fn push(&mut self, oids: &[Oid], keys: &[u32]) {
        self.oids.extend_from_slice(oids);
        self.keys.extend_from_slice(keys);
    }

    fn row(&self, r: usize) -> (&[Oid], &[u32]) {
        let s = r * self.n;
        (&self.oids[s..s + self.n], &self.keys[s..s + self.n])
    }
}

/// Pick the variable placement order: smallest candidate set first,
/// preferring variables joined (by an extracted equality) to an already
/// placed one. Ties on candidate-set size break by *class name* (then
/// declaration order), so the placement is a deterministic function of
/// the query and the data — not of incidental declaration shuffles.
fn choose_order(
    n: usize,
    sizes: &[usize],
    joins: &[crate::plan::JoinPred],
    vars: &[(ClassId, String)],
) -> Vec<usize> {
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    for _ in 0..n {
        let connected = |v: usize| {
            joins.iter().any(|j| {
                (j.left == v && placed[j.right]) || (j.right == v && placed[j.left])
            })
        };
        let any_connected =
            !order.is_empty() && (0..n).any(|v| !placed[v] && connected(v));
        let mut best: Option<usize> = None;
        for v in 0..n {
            if placed[v] || (any_connected && !connected(v)) {
                continue;
            }
            if best.map_or(true, |b| {
                sizes[v] < sizes[b]
                    || (sizes[v] == sizes[b]
                        && vars[v].0.as_str() < vars[b].0.as_str())
            }) {
                best = Some(v);
            }
        }
        let v = best.expect("some variable remains");
        placed[v] = true;
        order.push(v);
    }
    order
}

/// Assign each join predicate and residual conjunct to the earliest level
/// where all its variables are bound. The first equality closing at a
/// level whose endpoint is the level's variable becomes its hash probe;
/// further equalities and residuals become plain checks, applied in
/// source order.
fn build_levels(plan: &PlannedQuery, order: &[usize]) -> Vec<Level> {
    let mut placed = vec![false; plan.n];
    let mut join_used = vec![false; plan.joins.len()];
    let mut resid_used = vec![false; plan.residual.len()];
    let mut levels = Vec::with_capacity(order.len());
    for (li, &v) in order.iter().enumerate() {
        placed[v] = true;
        let mut hash = None;
        let mut checks: Vec<(usize, Check)> = Vec::new();
        if !plan.during {
            for (ji, j) in plan.joins.iter().enumerate() {
                if !join_used[ji] && placed[j.left] && placed[j.right] {
                    join_used[ji] = true;
                    if li > 0 && hash.is_none() && (j.left == v || j.right == v) {
                        hash = Some(ji);
                    } else {
                        checks.push((j.pos, Check::Join(ji)));
                    }
                }
            }
            for (ri, r) in plan.residual.iter().enumerate() {
                if !resid_used[ri] && r.vars.iter().all(|&u| placed[u]) {
                    resid_used[ri] = true;
                    checks.push((r.pos, Check::Resid(ri)));
                }
            }
        }
        checks.sort_by_key(|(pos, _)| *pos);
        levels.push(Level {
            var: v,
            hash,
            checks: checks.into_iter().map(|(_, c)| c).collect(),
        });
    }
    levels
}

/// Everything a partition worker needs, immutable and `Sync`.
struct ExecCtx<'a> {
    db: &'a Database,
    plan: &'a PlannedQuery,
    window: Interval,
    now: Instant,
    /// Filter-evaluation instant for point-scope queries.
    t0: Instant,
    cands: &'a [Vec<Cand>],
    levels: &'a [Level],
    maps: &'a [Option<HashMap<Value, Vec<u32>>>],
    /// All candidate indices per level (nested-loop iteration space).
    all_indices: &'a [Vec<u32>],
    /// Cap on surviving bindings (LIMIT without ORDER BY, order-preserving
    /// placements only).
    cap_scan: Option<usize>,
    /// Bounded top-k buffer size (ORDER BY + LIMIT).
    topk: Option<usize>,
    /// Shared budget meter (None = ungoverned execution).
    meter: Option<&'a Meter>,
}

impl ExecCtx<'_> {
    /// Does a freshly extended binding survive this level's checks?
    fn passes(
        &self,
        li: usize,
        oids: &[Oid],
        charge: &mut Charge<'_>,
    ) -> Result<bool, EvalError> {
        let last = li + 1 == self.levels.len();
        if self.plan.during {
            // Joint existential re-check of the whole filter: pushdown
            // under DURING is only a necessary condition.
            if last {
                if let Some(f) = &self.plan.full_filter {
                    let pts =
                        event_points_oids(self.db, oids, self.window, self.now);
                    charge.cost(pts.len() as u64)?;
                    let pass = pts.into_iter().any(|t| {
                        eval_cexpr(self.db, oids, t, self.now, f)
                            .map(|v| v == Value::Bool(true))
                            .unwrap_or(false)
                    });
                    return Ok(pass);
                }
            }
            return Ok(true);
        }
        for ch in &self.levels[li].checks {
            let e = match ch {
                Check::Join(j) => &self.plan.joins[*j].whole,
                Check::Resid(r) => &self.plan.residual[*r].expr,
            };
            if eval_cexpr(self.db, oids, self.t0, self.now, e)? != Value::Bool(true) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Run the whole pipeline over `[lo, hi)` of the base level's
    /// candidates. Partitions are contiguous, so per-partition outputs
    /// concatenate into the serial order.
    fn process(&self, lo: usize, hi: usize) -> Result<PartOut, EvalError> {
        let plan = self.plan;
        let n = plan.n;
        let nlevels = self.levels.len();
        let mut out = PartOut {
            rows: Vec::new(),
            count: 0,
            levels: vec![(0, 0); nlevels],
        };
        let mut obuf = vec![Oid(0); n];
        let mut kbuf = vec![0u32; n];
        let mut charge = Charge::new(self.meter);

        // Level 0: scan the base partition.
        let base = &self.levels[0];
        let mut partials = Partials::new(n);
        for cand in &self.cands[base.var][lo..hi] {
            out.levels[0].0 += 1;
            charge.bindings(1)?;
            obuf[base.var] = cand.oid;
            kbuf[base.var] = cand.pos;
            if self.passes(0, &obuf, &mut charge)? {
                partials.push(&obuf, &kbuf);
                out.levels[0].1 += 1;
                if nlevels == 1 && self.cap_scan.is_some_and(|k| partials.len() >= k) {
                    break;
                }
            }
        }

        // Deeper levels: hash probe or nested loop.
        for li in 1..nlevels {
            let lvl = &self.levels[li];
            let last = li + 1 == nlevels;
            let cnds = &self.cands[lvl.var];
            let mut next = Partials::new(n);
            'rows: for r in 0..partials.len() {
                let (po, pk) = partials.row(r);
                obuf.copy_from_slice(po);
                kbuf.copy_from_slice(pk);
                let bucket: &[u32] = match lvl.hash {
                    Some(ji) => {
                        let j = &plan.joins[ji];
                        let probe = if j.left == lvl.var { &j.right_key } else { &j.left_key };
                        let key = eval_cexpr(self.db, &obuf, self.t0, self.now, probe)?;
                        self.maps[li]
                            .as_ref()
                            .and_then(|m| m.get(&key))
                            .map_or(&[], Vec::as_slice)
                    }
                    None => &self.all_indices[li],
                };
                for &ci in bucket {
                    out.levels[li].0 += 1;
                    charge.bindings(1)?;
                    let cand = cnds[ci as usize];
                    obuf[lvl.var] = cand.oid;
                    kbuf[lvl.var] = cand.pos;
                    if self.passes(li, &obuf, &mut charge)? {
                        next.push(&obuf, &kbuf);
                        out.levels[li].1 += 1;
                        if last && self.cap_scan.is_some_and(|k| next.len() >= k) {
                            break 'rows;
                        }
                    }
                }
            }
            partials = next;
        }

        // Produce rows (or just count).
        if plan.counting {
            out.count = partials.len() as i64;
            charge.flush()?;
            return Ok(out);
        }
        if partials.len() == 0 {
            charge.flush()?;
            return Ok(out);
        }
        let t_eval = self
            .window
            .hi()
            .ok_or_else(|| EvalError::internal("empty evaluation window"))?;
        let q = &plan.q;
        for r in 0..partials.len() {
            let (oids, keys) = partials.row(r);
            let mut row = Vec::with_capacity(q.projections.len());
            for ((_, p), &vi) in q.projections.iter().zip(&plan.proj_vars) {
                row.push(eval_projection(self.db, oids[vi], p, t_eval, self.window, q)?);
            }
            charge.row(approx_row_bytes(&row))?;
            let oval = match &plan.order_key {
                Some((e, _)) => Some(eval_cexpr(self.db, oids, t_eval, self.now, e)?),
                None => None,
            };
            out.rows.push(RowOut { key: keys.to_vec(), oval, row });
            if let Some(k) = self.topk {
                // Bounded top-k: compact once the buffer doubles.
                if out.rows.len() >= (2 * k).max(64) {
                    sort_rows(&mut out.rows, plan);
                    out.rows.truncate(k);
                }
            }
        }
        charge.flush()?;
        Ok(out)
    }
}

/// Sort rows by the `ORDER BY` value (respecting direction), tie-broken
/// by naive enumeration order — exactly the reference evaluator's stable
/// sort over naive-ordered input.
fn sort_rows(rows: &mut [RowOut], plan: &PlannedQuery) {
    let desc = plan.order_key.as_ref().map(|(_, d)| *d).unwrap_or(false);
    rows.sort_by(|a, b| {
        let o = if desc {
            b.oval.cmp(&a.oval)
        } else {
            a.oval.cmp(&b.oval)
        };
        o.then_with(|| a.key.cmp(&b.key))
    });
}

/// Execute a planned query. Returns the result table (row-identical to
/// [`crate::eval::eval_select_naive`]) and the execution statistics that
/// back `EXPLAIN`.
pub fn execute_plan(
    db: &Database,
    plan: &PlannedQuery,
    opts: &ExecOptions,
) -> Result<(QueryResult, ExecStats), EvalError> {
    crate::eval::touch_metrics();
    let q = &plan.q;
    let n = plan.n;
    let _span = tchimera_obs::span!("query.eval", vars = n);
    if plan.during {
        tchimera_obs::counter!("query.eval.during").inc();
    }
    let now = db.now();
    let window: Interval = match q.time {
        TimeSpec::Now => Interval::point(now),
        TimeSpec::AsOf(t) => Interval::point(Instant(t)),
        TimeSpec::During(a, b) => Interval::new(Instant(a), Instant(b).min(now)),
    };
    let t0 = window.lo().unwrap_or(Instant::ZERO);

    let mut result = QueryResult {
        columns: q
            .projections
            .iter()
            .map(|(v, p)| projection_name(p, v))
            .collect(),
        rows: Vec::new(),
    };
    let mut stats = ExecStats::default();

    // Raw extents per variable.
    let mut raw: Vec<Vec<Oid>> = Vec::with_capacity(n);
    for (i, (class_id, var)) in q.vars.iter().enumerate() {
        db.guard_class(class_id)?;
        let class = db.schema().class(class_id)?;
        let oids = match q.time {
            TimeSpec::Now => class.ext_at(now, now),
            TimeSpec::AsOf(t) => class.ext_at(Instant(t), now),
            TimeSpec::During(a, b) => class.ext_during(Instant(a), Instant(b), now),
        };
        stats.vars.push(VarStats {
            var: var.clone(),
            class: class_id.as_str().to_owned(),
            extent: oids.len(),
            pushed: plan.prefilters[i].len(),
            after: oids.len(),
            indexed: None,
        });
        raw.push(oids);
    }
    stats.naive_bindings = raw.iter().map(|r| r.len() as u128).product();

    // Mirror the reference evaluator's early return on an empty extent
    // (it skips filter evaluation and the work counters entirely). An
    // empty window (reversed or entirely-future DURING bounds) can bind
    // nothing either, and returning here keeps the projection instant
    // (`window.hi()`) total for every later stage.
    if raw.iter().any(Vec::is_empty) || window.is_empty() {
        if plan.counting {
            result.rows.push(vec![Value::Int(0)]);
        }
        if let Some(limit) = q.limit {
            result.rows.truncate(limit as usize);
        }
        stats.rows = result.rows.len();
        return Ok((result, stats));
    }

    // Budget accounting: one shared meter for the whole execution; the
    // planning thread and every partition worker batch into it through
    // local `Charge`s.
    let meter = opts.budget.as_ref().map(Meter::new);
    let mut charge = Charge::new(meter.as_ref());

    // Index narrowing: resolve each planned equality/membership predicate
    // through the attribute-value index. A covered probe yields a sorted
    // superset of the objects that can satisfy the conjunct in the query
    // window — the scan below then skips everything else, and the
    // conjunct itself still runs on the survivors (prefilter or level
    // check), so rows never change. Uncovered probes (no temporal
    // declaration, unknown class) fall back to the plain scan.
    let mut allowed: Vec<Option<std::collections::HashSet<Oid>>> = vec![None; n];
    if opts.use_index && !plan.index_preds.is_empty() {
        let mut scans = 0u64;
        let mut fallbacks = 0u64;
        for p in &plan.index_preds {
            let probe_window = match p.at {
                Some(t) => Interval::point(Instant(t)),
                None => window,
            };
            match db.attr_index_probe(&q.vars[p.var].0, &p.attr, &p.values, probe_window) {
                Some(oids) => {
                    charge.cost(1 + oids.len() as u64)?;
                    scans += 1;
                    tchimera_obs::counter!("query.plan.index_candidates")
                        .add(oids.len() as u64);
                    let set: std::collections::HashSet<Oid> = oids.into_iter().collect();
                    match &mut allowed[p.var] {
                        Some(prev) => prev.retain(|o| set.contains(o)),
                        slot => *slot = Some(set),
                    }
                }
                None => fallbacks += 1,
            }
        }
        if scans > 0 {
            tchimera_obs::counter!("query.plan.index_scans").add(scans);
        }
        if fallbacks > 0 {
            tchimera_obs::counter!("query.plan.index_fallbacks").add(fallbacks);
        }
        for (i, a) in allowed.iter().enumerate() {
            if let Some(set) = a {
                stats.vars[i].indexed = Some(set.len());
            }
        }
    }

    // Prefilter candidates (single-variable queries keep their conjuncts
    // as source-ordered level checks instead — exact naive semantics).
    let mut cands: Vec<Vec<Cand>> = Vec::with_capacity(n);
    for (i, r) in raw.iter().enumerate() {
        let filtered =
            prefilter_var(db, plan, i, r, window, now, allowed[i].as_ref(), &mut charge)?;
        stats.vars[i].after = filtered.len();
        cands.push(filtered);
    }
    if plan.pushdown_count() > 0 {
        tchimera_obs::counter!("query.plan.pushdowns").add(plan.pushdown_count() as u64);
    }

    let sizes: Vec<usize> = cands.iter().map(Vec::len).collect();
    let order = choose_order(n, &sizes, &plan.joins, &q.vars);
    let needs_sort = order.iter().enumerate().any(|(i, &v)| i != v);
    let levels = build_levels(plan, &order);
    stats.order = order.clone();

    // Hash tables, built once over each joined level's candidates.
    let mut maps: Vec<Option<HashMap<Value, Vec<u32>>>> = Vec::with_capacity(levels.len());
    let mut all_indices: Vec<Vec<u32>> = Vec::with_capacity(levels.len());
    {
        let mut buf = vec![Oid(0); n];
        for lvl in &levels {
            let map = match lvl.hash {
                Some(ji) => {
                    let j = &plan.joins[ji];
                    let build = if j.left == lvl.var { &j.left_key } else { &j.right_key };
                    let mut m: HashMap<Value, Vec<u32>> = HashMap::new();
                    for (ci, cand) in cands[lvl.var].iter().enumerate() {
                        charge.cost(1)?;
                        buf[lvl.var] = cand.oid;
                        let key = eval_cexpr(db, &buf, t0, now, build)?;
                        m.entry(key).or_default().push(ci as u32);
                    }
                    Some(m)
                }
                None => None,
            };
            all_indices.push(match map {
                Some(_) => Vec::new(),
                None => (0..cands[lvl.var].len() as u32).collect(),
            });
            maps.push(map);
        }
    }
    let hash_levels = levels.iter().filter(|l| l.hash.is_some()).count();
    if hash_levels > 0 {
        tchimera_obs::counter!("query.plan.hash_joins").add(hash_levels as u64);
    }

    // Partition the base level.
    let limit = q.limit.map(|l| l as usize);
    let cap_scan = if !plan.counting && q.order.is_none() && !needs_sort {
        limit
    } else {
        None
    };
    let topk = if q.order.is_some() { limit } else { None };
    let base_len = cands[order[0]].len();
    let par = opts.parallel && cfg!(feature = "rayon");
    #[cfg(feature = "rayon")]
    let threads = rayon::current_num_threads();
    #[cfg(not(feature = "rayon"))]
    let threads = 1;
    let default_p = if par && threads > 1 && base_len >= 64 { threads } else { 1 };
    let p = opts.partitions.unwrap_or(default_p).clamp(1, base_len.max(1));
    let chunk = base_len.div_ceil(p);
    let ranges: Vec<(usize, usize)> = (0..p)
        .map(|i| (i * chunk, ((i + 1) * chunk).min(base_len)))
        .collect();
    stats.partitions = ranges.len();
    if ranges.len() > 1 {
        tchimera_obs::counter!("query.plan.partitions").add(ranges.len() as u64);
    }

    // The planning-stage batch must reconcile before workers start, so
    // a budget blown during prefilter/build surfaces here.
    charge.flush()?;

    let ctx = ExecCtx {
        db,
        plan,
        window,
        now,
        t0,
        cands: &cands,
        levels: &levels,
        maps: &maps,
        all_indices: &all_indices,
        cap_scan,
        topk,
        meter: meter.as_ref(),
    };
    #[cfg(feature = "rayon")]
    let parts: Vec<Result<PartOut, EvalError>> = if par && ranges.len() > 1 {
        ranges.par_iter().map(|&(lo, hi)| ctx.process(lo, hi)).collect()
    } else {
        ranges.iter().map(|&(lo, hi)| ctx.process(lo, hi)).collect()
    };
    #[cfg(not(feature = "rayon"))]
    let parts: Vec<Result<PartOut, EvalError>> =
        ranges.iter().map(|&(lo, hi)| ctx.process(lo, hi)).collect();

    // Merge partitions in base order (order-preserving concatenation).
    let mut all_rows: Vec<RowOut> = Vec::new();
    let mut count_total = 0i64;
    let mut level_sums = vec![(0u64, 0u64); levels.len()];
    for part in parts {
        let part = part?;
        count_total += part.count;
        for (s, l) in level_sums.iter_mut().zip(part.levels.iter()) {
            s.0 += l.0;
            s.1 += l.1;
        }
        all_rows.extend(part.rows);
    }
    stats.levels = levels
        .iter()
        .enumerate()
        .map(|(li, l)| LevelStats {
            var: l.var,
            hash: l.hash.is_some(),
            first: li == 0,
            checks: l.checks.len(),
            examined: level_sums[li].0,
            out: level_sums[li].1,
        })
        .collect();
    stats.bindings = level_sums.iter().map(|(e, _)| e).sum();

    if plan.counting {
        result.rows.push(vec![Value::Int(count_total)]);
    } else {
        if plan.order_key.is_some() {
            sort_rows(&mut all_rows, plan);
        } else if needs_sort {
            all_rows.sort_by(|a, b| a.key.cmp(&b.key));
        }
        result.rows.extend(all_rows.into_iter().map(|r| r.row));
    }
    if let Some(limit) = limit {
        result.rows.truncate(limit);
    }

    stats.rows = result.rows.len();
    tchimera_obs::counter!("query.eval.bindings").add(stats.bindings);
    tchimera_obs::counter!("query.eval.rows").add(result.rows.len() as u64);
    Ok((result, stats))
}

/// Apply a variable's pushed-down conjuncts over its raw extent. Under a
/// point scope each conjunct must hold at the scope instant (errors
/// propagate); under `DURING` a candidate survives if every conjunct
/// holds at *some* event point of that object alone — a necessary
/// condition for the joint existential filter checked later.
///
/// `allowed` is the index-resolved candidate set (if any): extent members
/// outside it are skipped *before* any evaluation or charging — that skip
/// is the examined-bindings saving the index buys. Positions (`Cand::pos`)
/// stay relative to the raw extent, so naive row order is preserved.
#[allow(clippy::too_many_arguments)]
fn prefilter_var(
    db: &Database,
    plan: &PlannedQuery,
    i: usize,
    raw: &[Oid],
    window: Interval,
    now: Instant,
    allowed: Option<&std::collections::HashSet<Oid>>,
    charge: &mut Charge<'_>,
) -> Result<Vec<Cand>, EvalError> {
    let pres = &plan.prefilters[i];
    if pres.is_empty() && allowed.is_none() {
        return Ok(raw
            .iter()
            .enumerate()
            .map(|(pos, &oid)| Cand { oid, pos: pos as u32 })
            .collect());
    }
    let t_point = window
        .lo()
        .ok_or_else(|| EvalError::internal("empty evaluation window"))?;
    let mut out = Vec::new();
    let mut buf = vec![Oid(0); plan.n];
    for (pos, &oid) in raw.iter().enumerate() {
        if allowed.is_some_and(|a| !a.contains(&oid)) {
            continue;
        }
        if pres.is_empty() {
            out.push(Cand { oid, pos: pos as u32 });
            continue;
        }
        buf[i] = oid;
        let keep = if plan.during {
            let pts = event_points_oids(db, std::slice::from_ref(&oid), window, now);
            charge.cost(1 + pts.len() as u64)?;
            pres.iter().all(|c| {
                pts.iter().any(|&t| {
                    eval_cexpr(db, &buf, t, now, c)
                        .map(|v| v == Value::Bool(true))
                        .unwrap_or(false)
                })
            })
        } else {
            charge.cost(1)?;
            let mut keep = true;
            for c in pres {
                if eval_cexpr(db, &buf, t_point, now, c)? != Value::Bool(true) {
                    keep = false;
                    break;
                }
            }
            keep
        };
        if keep {
            out.push(Cand { oid, pos: pos as u32 });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Stmt;
    use crate::eval::eval_select_naive;
    use crate::parser::parse;
    use crate::plan::plan_select;
    use tchimera_core::{attrs, ClassDef, ClassId, Type};

    fn join_db() -> Database {
        let mut db = Database::new();
        db.define_class(ClassDef::new("a").attr("v", Type::INTEGER)).unwrap();
        db.define_class(ClassDef::new("b").attr("v", Type::INTEGER)).unwrap();
        db.advance_to(Instant(1)).unwrap();
        for i in 0i64..12 {
            db.create_object(&ClassId::from("a"), attrs([("v", Value::Int(i % 4))]))
                .unwrap();
            db.create_object(&ClassId::from("b"), attrs([("v", Value::Int(i % 6))]))
                .unwrap();
        }
        db.tick_by(1);
        db
    }

    fn sel(src: &str) -> crate::ast::Select {
        match parse(src).unwrap() {
            Stmt::Select(s) => s,
            _ => unreachable!(),
        }
    }

    fn serial(partitions: usize) -> ExecOptions {
        ExecOptions {
            parallel: false,
            partitions: Some(partitions),
            ..Default::default()
        }
    }

    #[test]
    fn limit_without_order_stops_scanning_early() {
        let db = join_db();
        let q = sel("select x from a x limit 2");
        let plan = plan_select(&q);
        let (r, stats) = execute_plan(&db, &plan, &serial(1)).unwrap();
        assert_eq!(r.rows, eval_select_naive(&db, &q).unwrap().rows);
        assert_eq!(r.len(), 2);
        assert_eq!(stats.levels[0].examined, 2, "scan must stop at the limit");
    }

    #[test]
    fn hash_join_examines_fewer_bindings_than_cross_product() {
        let db = join_db();
        let q = sel("select x, y from a x, b y where x.v = y.v");
        let plan = plan_select(&q);
        let (r, stats) = execute_plan(&db, &plan, &serial(1)).unwrap();
        assert_eq!(r.rows, eval_select_naive(&db, &q).unwrap().rows);
        assert!(!r.rows.is_empty());
        assert!(stats.levels[1].hash, "equality must probe a hash table");
        assert!(
            u128::from(stats.bindings) < stats.naive_bindings,
            "{} bindings vs naive {}",
            stats.bindings,
            stats.naive_bindings
        );
    }

    #[test]
    fn partition_boundaries_preserve_row_order() {
        let db = join_db();
        for src in [
            "select x, x.v from a x where x.v >= 1",
            "select x, y from a x, b y where x.v = y.v and x.v > 0",
            "select x from a x order by x.v desc limit 5",
        ] {
            let q = sel(src);
            let plan = plan_select(&q);
            let (one, _) = execute_plan(&db, &plan, &serial(1)).unwrap();
            let (three, s3) = execute_plan(&db, &plan, &serial(3)).unwrap();
            let (par, _) = execute_plan(&db, &plan, &ExecOptions::default()).unwrap();
            assert_eq!(one.rows, three.rows, "{src}");
            assert_eq!(one.rows, par.rows, "{src}");
            assert_eq!(s3.partitions, 3, "{src}");
        }
    }

    /// `n` employees, 1 in 10 in the rare department, temporal attrs.
    fn dept_db(n: i64) -> Database {
        let mut db = Database::new();
        db.define_class(
            ClassDef::new("emp")
                .attr("dept", Type::temporal(Type::STRING))
                .attr("v", Type::temporal(Type::INTEGER)),
        )
        .unwrap();
        db.advance_to(Instant(1)).unwrap();
        for i in 0..n {
            let dept = if i % 10 == 0 { "rare" } else { "common" };
            db.create_object(
                &ClassId::from("emp"),
                attrs([("dept", Value::str(dept)), ("v", Value::Int(i))]),
            )
            .unwrap();
        }
        db.tick_by(1);
        db
    }

    #[test]
    fn index_narrowing_matches_naive_and_examines_fewer_bindings() {
        let db = dept_db(100);
        let q = sel("select x from emp x where x.dept = 'rare'");
        let plan = plan_select(&q);
        assert_eq!(plan.index_preds.len(), 1);
        let on = serial(1);
        let off = ExecOptions { use_index: false, ..serial(1) };
        let (r_on, s_on) = execute_plan(&db, &plan, &on).unwrap();
        let (r_off, s_off) = execute_plan(&db, &plan, &off).unwrap();
        let naive = eval_select_naive(&db, &q).unwrap();
        assert_eq!(r_on.rows, naive.rows);
        assert_eq!(r_off.rows, naive.rows);
        assert_eq!(r_on.len(), 10);
        assert_eq!(s_off.bindings, 100, "scan path examines the extent");
        assert_eq!(s_on.bindings, 10, "index path examines only holders");
        assert_eq!(s_on.vars[0].indexed, Some(10));
        assert!(s_off.vars[0].indexed.is_none());
    }

    #[test]
    fn membership_or_chain_and_as_of_probe_through_the_index() {
        let mut db = dept_db(60);
        // Move one rare employee out at t=2 so AS OF 1 and NOW differ.
        let moved = db
            .objects()
            .find(|o| {
                o.attr(&AttrName::from("dept"))
                    .and_then(|v| v.as_temporal())
                    .and_then(|h| h.value_now(db.now()))
                    == Some(&Value::str("rare"))
            })
            .map(|o| o.oid)
            .unwrap();
        db.set_attr(moved, &AttrName::from("dept"), Value::str("gone"))
            .unwrap();
        db.tick_by(1);
        for src in [
            "select x from emp x where x.dept = 'rare' or x.dept = 'gone'",
            "select x from emp x as of 1 where x.dept = 'rare'",
            "select x from emp x during [0, 9] where x.dept = 'gone'",
            "select x from emp x where x.dept at 1 = 'rare'",
        ] {
            let q = sel(src);
            let plan = plan_select(&q);
            assert_eq!(plan.index_preds.len(), 1, "{src}");
            let (r, stats) = execute_plan(&db, &plan, &serial(1)).unwrap();
            assert_eq!(r.rows, eval_select_naive(&db, &q).unwrap().rows, "{src}");
            assert!(stats.vars[0].indexed.is_some(), "{src}");
        }
    }

    #[test]
    fn uncovered_predicates_fall_back_to_the_scan_path() {
        let db = join_db(); // `v` is a *static* attribute: not covered.
        let q = sel("select x from a x where x.v = 2");
        let plan = plan_select(&q);
        assert_eq!(plan.index_preds.len(), 1, "the shape is recorded");
        let (r, stats) = execute_plan(&db, &plan, &serial(1)).unwrap();
        assert_eq!(r.rows, eval_select_naive(&db, &q).unwrap().rows);
        assert!(stats.vars[0].indexed.is_none(), "static decl ⇒ fallback");
    }

    #[test]
    fn index_narrowing_seeds_join_variable_order() {
        let db = dept_db(80);
        let q = sel(
            "select x, y from emp x, emp y \
             where x.dept = 'rare' and x.v = y.v",
        );
        let plan = plan_select(&q);
        let (r, stats) = execute_plan(&db, &plan, &serial(1)).unwrap();
        assert_eq!(r.rows, eval_select_naive(&db, &q).unwrap().rows);
        // The narrowed variable is placed first (8 rare vs 80 extent).
        assert_eq!(stats.order[0], 0);
        assert_eq!(stats.vars[0].indexed, Some(8));
        let (r_off, _) = execute_plan(
            &db,
            &plan,
            &ExecOptions { use_index: false, ..serial(1) },
        )
        .unwrap();
        assert_eq!(r.rows, r_off.rows);
    }

    #[test]
    fn explain_renders_index_scan() {
        let db = dept_db(50);
        let q = sel("select x from emp x where x.dept = 'rare'");
        let plan = plan_select(&q);
        let (_, stats) = execute_plan(&db, &plan, &serial(1)).unwrap();
        let txt = crate::plan::render_explain(&plan, &stats, false);
        assert!(txt.contains("IndexScan"), "{txt}");
        assert!(txt.contains("index->"), "{txt}");
        // The scan path renders a plain scan.
        let (_, stats) = execute_plan(
            &db,
            &plan,
            &ExecOptions { use_index: false, ..serial(1) },
        )
        .unwrap();
        let txt = crate::plan::render_explain(&plan, &stats, false);
        assert!(!txt.contains("IndexScan"), "{txt}");
    }

    #[test]
    fn choose_order_breaks_extent_ties_by_class_name() {
        // Two classes, same extent size: `b…` must be placed before `z…`
        // whatever the declaration order.
        let mut db = Database::new();
        db.define_class(ClassDef::new("zeta").attr("v", Type::INTEGER)).unwrap();
        db.define_class(ClassDef::new("beta").attr("v", Type::INTEGER)).unwrap();
        db.advance_to(Instant(1)).unwrap();
        for i in 0i64..4 {
            db.create_object(&ClassId::from("zeta"), attrs([("v", Value::Int(i))]))
                .unwrap();
            db.create_object(&ClassId::from("beta"), attrs([("v", Value::Int(i))]))
                .unwrap();
        }
        db.tick_by(1);
        let q = sel("select x, y from zeta x, beta y");
        let plan = plan_select(&q);
        let (r, stats) = execute_plan(&db, &plan, &serial(1)).unwrap();
        assert_eq!(stats.order, vec![1, 0], "beta sorts before zeta");
        assert_eq!(r.rows, eval_select_naive(&db, &q).unwrap().rows);
    }

    #[test]
    fn order_by_limit_uses_bounded_topk() {
        let db = join_db();
        let q = sel("select x, x.v from a x order by x.v limit 3");
        let plan = plan_select(&q);
        let (r, _) = execute_plan(&db, &plan, &serial(1)).unwrap();
        assert_eq!(r.rows, eval_select_naive(&db, &q).unwrap().rows);
        assert_eq!(r.len(), 3);
    }
}
