//! The TCQL interpreter: parse → type-check → execute against a database.

use std::fmt;

use tchimera_core::{
    ConsistencyReport, Constraint, ConstraintViolation, Database, Equality, Instant,
    InvariantViolation, ModelError, Oid, Quantifier,
};

use crate::ast::{ConstraintSpec, Stmt};
use crate::eval::{EvalError, QueryResult};
use crate::exec::{execute_plan, ExecOptions, ExecStats};
use crate::governor::{CancelToken, ExecBudget, Progress, Resource};
use crate::parser::{parse, parse_script, ParseError};
use crate::plan::{render_explain, PlanCache, PlannedQuery};
use crate::typecheck::TypeError;

/// Any error produced while running a TCQL statement.
#[derive(Debug)]
pub enum QueryError {
    /// Lexical/syntactic error.
    Parse(ParseError),
    /// Static type error.
    Type(TypeError),
    /// Model rejection during execution.
    Model(ModelError),
    /// Runtime evaluation error.
    Eval(EvalError),
    /// The query's resource budget ran out (`DESIGN.md` §12).
    BudgetExceeded {
        /// Which limit tripped.
        resource: Resource,
        /// Units spent when it tripped.
        spent: u64,
        /// The configured limit.
        limit: u64,
        /// Work done up to the stop.
        progress: Progress,
    },
    /// The query's cancellation token fired.
    Cancelled {
        /// Work done up to the stop.
        progress: Progress,
    },
    /// The concurrent-query cap was reached; the query was shed rather
    /// than queued.
    Overloaded {
        /// Queries running when this one was refused.
        active: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The evaluator panicked; the panic was caught at the query API and
    /// the engine keeps serving.
    Internal(String),
    /// A mutating statement reached a read-only session (a
    /// [`ReplicaSession`](crate::replica::ReplicaSession) serving a
    /// follower's database).
    ReadOnly {
        /// The statement kind that was refused.
        stmt: &'static str,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Type(e) => write!(f, "type error: {e}"),
            QueryError::Model(e) => write!(f, "{e}"),
            QueryError::Eval(e) => write!(f, "{e}"),
            QueryError::BudgetExceeded { resource, spent, limit, progress } => write!(
                f,
                "query budget exceeded: {resource} {spent} > limit {limit} (progress: {progress})"
            ),
            QueryError::Cancelled { progress } => {
                write!(f, "query cancelled (progress: {progress})")
            }
            QueryError::Overloaded { active, cap } => write!(
                f,
                "overloaded: {active} queries already running (cap {cap}); retry later"
            ),
            QueryError::Internal(msg) => write!(f, "internal query error: {msg}"),
            QueryError::ReadOnly { stmt } => write!(
                f,
                "read-only session: {stmt} is a mutating statement; run it on the primary"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}
impl From<TypeError> for QueryError {
    fn from(e: TypeError) -> Self {
        QueryError::Type(e)
    }
}
impl From<ModelError> for QueryError {
    fn from(e: ModelError) -> Self {
        QueryError::Model(e)
    }
}
impl From<EvalError> for QueryError {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::Budget { resource, spent, limit, progress } => {
                QueryError::BudgetExceeded { resource, spent, limit, progress }
            }
            EvalError::Cancelled { progress } => QueryError::Cancelled { progress },
            EvalError::Internal(msg) => QueryError::Internal(msg),
            other => QueryError::Eval(other),
        }
    }
}

/// The result of executing one statement.
#[derive(Debug)]
pub enum Outcome {
    /// DDL/DML acknowledged.
    Ok,
    /// An object was created.
    Created(Oid),
    /// The clock moved.
    Time(Instant),
    /// Query rows.
    Table(QueryResult),
    /// `EXPLAIN SELECT` report.
    Explain(String),
    /// Class description (from `SHOW CLASS`).
    ClassInfo(String),
    /// `CHECK CONSISTENCY` report.
    Consistency(ConsistencyReport),
    /// `CHECK INVARIANTS` report.
    Invariants(Vec<InvariantViolation>),
    /// `COMPARE` result: the strongest equality, if any.
    Equality(Option<Equality>),
    /// `CHECK CONSTRAINT` report.
    Constraint(Vec<ConstraintViolation>),
    /// `SCRUB NOW` / `SCRUB STATUS` report, pre-rendered.
    Scrub(String),
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Ok => write!(f, "ok"),
            Outcome::Created(i) => write!(f, "created {i}"),
            Outcome::Time(t) => write!(f, "now = {t}"),
            Outcome::Table(t) => write!(f, "{t}"),
            Outcome::Explain(s) => write!(f, "{s}"),
            Outcome::ClassInfo(s) => write!(f, "{s}"),
            Outcome::Consistency(r) => {
                if r.is_consistent() {
                    write!(f, "consistent")
                } else {
                    writeln!(f, "{} violation(s):", r.len())?;
                    for e in &r.errors {
                        writeln!(f, "  {e}")?;
                    }
                    Ok(())
                }
            }
            Outcome::Invariants(v) => {
                if v.is_empty() {
                    write!(f, "all invariants hold")
                } else {
                    writeln!(f, "{} violation(s):", v.len())?;
                    for e in v {
                        writeln!(f, "  {e}")?;
                    }
                    Ok(())
                }
            }
            Outcome::Equality(None) => write!(f, "not equal under any notion"),
            Outcome::Equality(Some(e)) => write!(f, "strongest equality: {e:?}"),
            Outcome::Constraint(v) => {
                if v.is_empty() {
                    write!(f, "constraint satisfied")
                } else {
                    writeln!(f, "{} violation(s):", v.len())?;
                    for e in v {
                        writeln!(f, "  {e}")?;
                    }
                    Ok(())
                }
            }
            Outcome::Scrub(s) => write!(f, "{s}"),
        }
    }
}

/// A stateful TCQL interpreter owning a [`Database`].
///
/// Every `SELECT`/`EXPLAIN` it executes is **governed** (`DESIGN.md`
/// §12): admission-controlled against the database's concurrent-query
/// cap, metered against the interpreter's [`ExecBudget`] (default limits
/// unless [`Interpreter::set_budget`] overrides them), and shielded so an
/// evaluator panic surfaces as [`QueryError::Internal`] instead of
/// unwinding through the caller.
#[derive(Default)]
pub struct Interpreter {
    db: Database,
    plans: PlanCache,
    budget: ExecBudget,
    /// Outcome of the most recent `SCRUB NOW`, for `SCRUB STATUS`.
    last_scrub: Option<tchimera_core::ScrubReport>,
}

impl Interpreter {
    /// A fresh interpreter over an empty database.
    #[must_use]
    pub fn new() -> Interpreter {
        Interpreter::default()
    }

    /// Wrap an existing database.
    #[must_use]
    pub fn with_db(db: Database) -> Interpreter {
        Interpreter { db, ..Interpreter::default() }
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database (for mixing API and TCQL
    /// use).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The budget governing each query this interpreter runs.
    pub fn budget(&self) -> &ExecBudget {
        &self.budget
    }

    /// Replace the per-query budget (applies to subsequent statements).
    pub fn set_budget(&mut self, budget: ExecBudget) {
        self.budget = budget;
    }

    /// The cancellation token attached to this interpreter's queries.
    /// Cancel it from another thread to stop the running query; it is
    /// NOT auto-reset, so call [`CancelToken::reset`] before reuse.
    pub fn cancel_token(&self) -> CancelToken {
        self.budget.cancel.clone()
    }

    /// Run a planned query under the full governor: admission control,
    /// budget metering, and a panic shield. This is the only path by
    /// which the interpreter executes query plans.
    fn governed_query(
        &self,
        plan: &PlannedQuery,
    ) -> Result<(QueryResult, ExecStats), QueryError> {
        governed_query(&self.db, &self.budget, plan)
    }

    /// Parse, type-check and execute a single statement.
    pub fn run(&mut self, src: &str) -> Result<Outcome, QueryError> {
        let stmt = parse(src)?;
        self.execute(stmt)
    }

    /// Run a `;`-separated script, stopping at the first error; returns
    /// the outcome of each executed statement.
    pub fn run_script(&mut self, src: &str) -> Result<Vec<Outcome>, QueryError> {
        let stmts = parse_script(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.execute(stmt)?);
        }
        Ok(out)
    }

    /// Execute a parsed statement.
    pub fn execute(&mut self, stmt: Stmt) -> Result<Outcome, QueryError> {
        Ok(match stmt {
            Stmt::DefineClass(def) => {
                self.db.define_class(def)?;
                Outcome::Ok
            }
            Stmt::DropClass(c) => {
                self.db.drop_class(&c)?;
                Outcome::Ok
            }
            Stmt::Create { class, init } => {
                let init = init
                    .into_iter()
                    .map(|(n, l)| (n, l.to_value()))
                    .collect();
                Outcome::Created(self.db.create_object(&class, init)?)
            }
            Stmt::Set { oid, attr, value } => {
                self.db.set_attr(Oid(oid), &attr, value.to_value())?;
                Outcome::Ok
            }
            Stmt::SetCAttr { class, attr, value } => {
                self.db.set_c_attr(&class, &attr, value.to_value())?;
                Outcome::Ok
            }
            Stmt::Migrate { oid, to, init } => {
                let init = init
                    .into_iter()
                    .map(|(n, l)| (n, l.to_value()))
                    .collect();
                self.db.migrate(Oid(oid), &to, init)?;
                Outcome::Ok
            }
            Stmt::Terminate { oid } => {
                self.db.terminate_object(Oid(oid))?;
                Outcome::Ok
            }
            Stmt::Tick(n) => Outcome::Time(self.db.tick_by(n)),
            Stmt::AdvanceTo(t) => Outcome::Time(self.db.advance_to(Instant(t))?),
            Stmt::Select(q) => {
                let (plan, _hit) = self.plans.get_or_plan(self.db.schema(), &q)?;
                let (table, _stats) = self.governed_query(&plan)?;
                Outcome::Table(table)
            }
            Stmt::Explain(q) => {
                let (plan, hit) = self.plans.get_or_plan(self.db.schema(), &q)?;
                let (_table, stats) = self.governed_query(&plan)?;
                Outcome::Explain(render_explain(&plan, &stats, hit))
            }
            Stmt::ShowClass(c) => Outcome::ClassInfo(describe_class(&self.db, &c)?),
            Stmt::CheckConsistency => Outcome::Consistency(self.db.check_database()),
            Stmt::CheckInvariants => Outcome::Invariants(self.db.check_invariants()),
            Stmt::Compare { a, b } => {
                Outcome::Equality(self.db.strongest_equality(Oid(a), Oid(b))?)
            }
            Stmt::CheckConstraint(spec) => {
                Outcome::Constraint(self.db.check_constraint(&constraint_of(spec)))
            }
            Stmt::ScrubNow => {
                let report = self.governed_scrub()?;
                let rendered = report.to_string();
                self.last_scrub = Some(report);
                Outcome::Scrub(rendered)
            }
            Stmt::ScrubStatus => {
                Outcome::Scrub(render_scrub_status(self.last_scrub.as_ref(), &self.db))
            }
        })
    }

    /// The report of the most recent `SCRUB NOW`, if one has run.
    pub fn last_scrub(&self) -> Option<&tchimera_core::ScrubReport> {
        self.last_scrub.as_ref()
    }

    /// Run one scrub cycle under the same governor policy as a query:
    /// admission-controlled against the concurrent-query cap, charged
    /// step by step against this interpreter's [`ExecBudget`] cost cap
    /// (a scrub can consume no more logical cost than a single query
    /// may), cancellable through the budget's token, and panic-shielded.
    /// An over-budget cycle stops early with `budget_exhausted` set
    /// rather than erroring: partial verification is still progress, and
    /// the counters cover exactly the work done.
    fn governed_scrub(&mut self) -> Result<tchimera_core::ScrubReport, QueryError> {
        let gate = self.db.admission_handle();
        let Some(_permit) = gate.try_enter() else {
            return Err(QueryError::Overloaded {
                active: gate.active(),
                cap: gate.cap(),
            });
        };
        let max_cost = self.budget.max_cost;
        let cancel = self.budget.cancel.clone();
        let db = &mut self.db;
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut spent = 0u64;
            db.scrub_cycle_with(&mut |cost| {
                spent = spent.saturating_add(cost);
                spent <= max_cost && !cancel.is_cancelled()
            })
        }));
        match caught {
            Ok(report) => Ok(report),
            Err(payload) => {
                tchimera_obs::counter!("query.panic.count").inc();
                Err(QueryError::Internal(panic_message(payload)))
            }
        }
    }
}

/// Render `SCRUB STATUS`: the last recorded cycle (if any) plus the
/// database's live quarantine set. Shared by both session kinds; a
/// replica session passes `None` since scrubbing there happens at the
/// storage layer, not through TCQL.
pub(crate) fn render_scrub_status(
    last: Option<&tchimera_core::ScrubReport>,
    db: &Database,
) -> String {
    let mut s = match last {
        Some(r) => r.to_string(),
        None => "scrub: no cycle recorded".to_string(),
    };
    let q = db.quarantined_classes();
    if q.is_empty() {
        s.push_str("\nquarantine: empty");
    } else {
        let names: Vec<String> = q.iter().map(ToString::to_string).collect();
        s.push_str(&format!("\nquarantine: {}", names.join(", ")));
    }
    s
}

/// Run a planned query under the full governor: admission control
/// against the database's concurrent-query cap, budget metering, and a
/// panic shield. Shared by [`Interpreter`] and
/// [`ReplicaSession`](crate::replica::ReplicaSession) so both front
/// doors enforce the identical policy.
pub(crate) fn governed_query(
    db: &Database,
    budget: &ExecBudget,
    plan: &PlannedQuery,
) -> Result<(QueryResult, ExecStats), QueryError> {
    let gate = db.admission();
    let Some(_permit) = gate.try_enter() else {
        return Err(QueryError::Overloaded {
            active: gate.active(),
            cap: gate.cap(),
        });
    };
    let opts = ExecOptions {
        budget: Some(budget.clone()),
        ..ExecOptions::default()
    };
    // The shield: `execute_plan` reads shared state only (&Database),
    // so observing it after a caught unwind is sound; the permit's
    // Drop still runs, nothing is poisoned, and the engine serves the
    // next statement.
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_plan(db, plan, &opts)
    }));
    match caught {
        Ok(Ok(out)) => Ok(out),
        Ok(Err(e)) => {
            match &e {
                EvalError::Budget { .. } => {
                    tchimera_obs::counter!("query.governor.budget_exceeded").inc()
                }
                EvalError::Cancelled { .. } => {
                    tchimera_obs::counter!("query.governor.cancelled").inc()
                }
                _ => {}
            }
            Err(e.into())
        }
        Err(payload) => {
            tchimera_obs::counter!("query.panic.count").inc();
            Err(QueryError::Internal(panic_message(payload)))
        }
    }
}

/// Lower a parsed constraint spec to the model-level [`Constraint`].
pub(crate) fn constraint_of(spec: ConstraintSpec) -> Constraint {
    match spec {
        ConstraintSpec::Covered(class, attr) => Constraint::Covered { class, attr },
        ConstraintSpec::NonDecreasing(class, attr) => Constraint::NonDecreasing { class, attr },
        ConstraintSpec::Constant(class, attr) => Constraint::ConstantHistory { class, attr },
        ConstraintSpec::NeverNull(class, attr) => Constraint::NeverNull { class, attr },
        ConstraintSpec::Range { class, attr, min, max, always } => Constraint::InRange {
            class,
            attr,
            min: min.to_value(),
            max: max.to_value(),
            quantifier: if always { Quantifier::Always } else { Quantifier::Sometime },
        },
    }
}

/// Render the `SHOW CLASS` description (shared by both session kinds).
pub(crate) fn describe_class(
    db: &Database,
    c: &tchimera_core::ClassId,
) -> Result<String, QueryError> {
    let class = db.class(c)?;
    let mut s = format!(
        "class {} ({:?}), lifespan {}\n",
        class.id, class.kind, class.lifespan
    );
    if !class.superclasses.is_empty() {
        let sups: Vec<&str> = class.superclasses.iter().map(|c| c.as_str()).collect();
        s.push_str(&format!("  under: {}\n", sups.join(", ")));
    }
    for (n, d) in &class.all_attrs {
        let own = if class.own_attrs.contains_key(n) { "" } else { " (inherited)" };
        let imm = if d.immutable { " immutable" } else { "" };
        s.push_str(&format!("  {n}: {}{imm}{own}\n", d.ty));
    }
    for (n, m) in &class.all_methods {
        let ins: Vec<String> = m.inputs.iter().map(|t| t.to_string()).collect();
        s.push_str(&format!("  method {n}({}): {}\n", ins.join(","), m.output));
    }
    for (n, d) in &class.c_attrs {
        s.push_str(&format!("  c-attribute {n}: {}\n", d.ty));
    }
    for (n, m) in &class.c_methods {
        let ins: Vec<String> = m.inputs.iter().map(|t| t.to_string()).collect();
        s.push_str(&format!("  c-operation {n}({}): {}\n", ins.join(","), m.output));
    }
    Ok(s)
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query evaluator panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchimera_core::Value;

    #[test]
    fn end_to_end_script() {
        let mut interp = Interpreter::new();
        let outcomes = interp
            .run_script(
                "define class person (name: temporal(string) immutable, address: string); \
                 define class employee under person (salary: temporal(integer)); \
                 advance to 10; \
                 create employee (name := 'Bob', address := 'Milano', salary := 100); \
                 tick 10; \
                 set #0.salary := 150; \
                 select e, e.salary from employee e where e.salary > 120; \
                 check consistency; \
                 check invariants",
            )
            .unwrap();
        assert_eq!(outcomes.len(), 9);
        assert!(matches!(outcomes[3], Outcome::Created(Oid(0))));
        match &outcomes[6] {
            Outcome::Table(t) => {
                assert_eq!(t.len(), 1);
                assert_eq!(t.rows[0][1], Value::Int(150));
            }
            other => panic!("expected table, got {other}"),
        }
        assert!(matches!(&outcomes[7], Outcome::Consistency(r) if r.is_consistent()));
        assert!(matches!(&outcomes[8], Outcome::Invariants(v) if v.is_empty()));
    }

    #[test]
    fn migration_via_tcql() {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class person (); \
                 define class employee under person (salary: temporal(integer)); \
                 define class manager under employee (officialcar: string); \
                 advance to 10; \
                 create employee (salary := 100); \
                 tick 10; \
                 migrate #0 to manager (officialcar := 'Alfa 164')",
            )
            .unwrap();
        let out = interp.run("select e, class of e from person e").unwrap();
        match out {
            Outcome::Table(t) => {
                assert_eq!(t.len(), 1);
                assert_eq!(t.rows[0][1], Value::str("manager"));
            }
            other => panic!("expected table, got {other}"),
        }
        // Time travel sees the pre-migration class.
        let out = interp
            .run("select class of e from person e as of 15")
            .unwrap();
        match out {
            Outcome::Table(t) => assert_eq!(t.rows[0][0], Value::str("employee")),
            other => panic!("expected table, got {other}"),
        }
    }

    #[test]
    fn type_errors_caught_before_execution() {
        let mut interp = Interpreter::new();
        interp
            .run("define class c (x: temporal(integer), y: string)")
            .unwrap();
        let err = interp.run("select z.x from c z where z.x = 'nope'").unwrap_err();
        assert!(matches!(err, QueryError::Type(_)));
        let err = interp.run("select history of z.y from c z").unwrap_err();
        assert!(matches!(err, QueryError::Type(TypeError::NotTemporal { .. })));
    }

    #[test]
    fn model_errors_surface() {
        let mut interp = Interpreter::new();
        interp.run("define class c (x: integer)").unwrap();
        let err = interp.run("create c (x := 'wrong')").unwrap_err();
        assert!(matches!(err, QueryError::Model(ModelError::TypeMismatch { .. })));
        let err = interp.run("set #99.x := 1").unwrap_err();
        assert!(matches!(err, QueryError::Model(ModelError::UnknownObject(_))));
        let err = interp.run("terminate #99").unwrap_err();
        assert!(err.to_string().contains("i99"));
    }

    #[test]
    fn show_class_describes() {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class person (name: string); \
                 define class employee under person (salary: temporal(integer)) \
                   c-attributes (headcount: temporal(integer)) \
                   methods (raise(integer): employee)",
            )
            .unwrap();
        let out = interp.run("show class employee").unwrap();
        match out {
            Outcome::ClassInfo(s) => {
                assert!(s.contains("under: person"));
                assert!(s.contains("salary: temporal(integer)"));
                assert!(s.contains("name: string (inherited)"));
                assert!(s.contains("method raise(integer): employee"));
                assert!(s.contains("c-attribute headcount"));
            }
            other => panic!("expected class info, got {other}"),
        }
    }

    #[test]
    fn outcome_display() {
        assert_eq!(Outcome::Ok.to_string(), "ok");
        assert_eq!(Outcome::Created(Oid(3)).to_string(), "created i3");
        assert_eq!(Outcome::Time(Instant(9)).to_string(), "now = 9");
        assert_eq!(
            Outcome::Consistency(ConsistencyReport::default()).to_string(),
            "consistent"
        );
        assert_eq!(Outcome::Invariants(vec![]).to_string(), "all invariants hold");
    }

    #[test]
    fn count_aggregate() {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class employee (salary: temporal(integer)); \
                 advance to 10; \
                 create employee (salary := 100); \
                 create employee (salary := 200); \
                 create employee (salary := 300); \
                 advance to 20; \
                 terminate #0",
            )
            .unwrap();
        let count = |interp: &mut Interpreter, q: &str| match interp.run(q).unwrap() {
            Outcome::Table(t) => t.rows[0][0].clone(),
            other => panic!("expected table, got {other}"),
        };
        interp.run("tick").unwrap();
        assert_eq!(
            count(&mut interp, "select count(e) from employee e"),
            Value::Int(2)
        );
        assert_eq!(
            count(&mut interp, "select count(e) from employee e as of 15"),
            Value::Int(3)
        );
        assert_eq!(
            count(
                &mut interp,
                "select count(e) from employee e where e.salary >= 200"
            ),
            Value::Int(2)
        );
        assert_eq!(
            count(&mut interp, "select count(e) from employee e where e.salary > 999"),
            Value::Int(0)
        );
        // Count mixed with other projections is a static error.
        let err = interp
            .run("select count(e), e.salary from employee e")
            .unwrap_err();
        assert!(matches!(err, QueryError::Type(TypeError::CountNotAlone)));
    }

    #[test]
    fn compare_statement() {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class player (score: temporal(integer)); \
                 create player (score := 5); \
                 create player (score := 5); \
                 create player (score := 9); \
                 tick 3",
            )
            .unwrap();
        match interp.run("compare #0 #0").unwrap() {
            Outcome::Equality(Some(Equality::Identity)) => {}
            other => panic!("expected identity, got {other}"),
        }
        match interp.run("compare #0 #1").unwrap() {
            Outcome::Equality(Some(Equality::Value)) => {}
            other => panic!("expected value equality, got {other}"),
        }
        match interp.run("compare #0 #2").unwrap() {
            Outcome::Equality(None) => {}
            other => panic!("expected no equality, got {other}"),
        }
        assert!(Outcome::Equality(Some(Equality::Weak))
            .to_string()
            .contains("Weak"));
        assert!(Outcome::Equality(None).to_string().contains("not equal"));
    }

    #[test]
    fn check_constraint_statements() {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class employee (salary: temporal(integer)); \
                 advance to 10; \
                 create employee (salary := 100); \
                 advance to 20; \
                 set #0.salary := 90",
            )
            .unwrap();
        match interp
            .run("check constraint non-decreasing employee.salary")
            .unwrap()
        {
            Outcome::Constraint(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].oid, Oid(0));
            }
            other => panic!("expected constraint report, got {other}"),
        }
        match interp.run("check constraint covered employee.salary").unwrap() {
            Outcome::Constraint(v) => assert!(v.is_empty()),
            other => panic!("expected constraint report, got {other}"),
        }
        match interp
            .run("check constraint range employee.salary [50, 200] always")
            .unwrap()
        {
            Outcome::Constraint(v) => assert!(v.is_empty()),
            other => panic!("expected constraint report, got {other}"),
        }
        match interp
            .run("check constraint range employee.salary [95, 200] sometime")
            .unwrap()
        {
            Outcome::Constraint(v) => assert!(v.is_empty()), // 100 was in range
            other => panic!("expected constraint report, got {other}"),
        }
        match interp
            .run("check constraint constant employee.salary")
            .unwrap()
        {
            Outcome::Constraint(v) => assert_eq!(v.len(), 1),
            other => panic!("expected constraint report, got {other}"),
        }
        assert!(interp
            .run("check constraint bogus employee.salary")
            .is_err());
        let shown = interp
            .run("check constraint never-null employee.salary")
            .unwrap()
            .to_string();
        assert!(shown.contains("satisfied"));
    }

    #[test]
    fn explain_reports_plan_and_cache_disposition() {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class employee (salary: temporal(integer)); \
                 advance to 10; \
                 create employee (salary := 100); \
                 create employee (salary := 200); \
                 tick 5",
            )
            .unwrap();
        let q = "explain select e from employee e where e.salary > 150";
        match interp.run(q).unwrap() {
            Outcome::Explain(s) => {
                assert!(s.contains("plan (now):"), "{s}");
                assert!(s.contains("var e: employee"), "{s}");
                assert!(s.contains("plan cache: miss"), "{s}");
                assert!(s.contains("rows: 1"), "{s}");
            }
            other => panic!("expected explain, got {other}"),
        }
        // Second run of the same query reuses the cached plan.
        match interp.run(q).unwrap() {
            Outcome::Explain(s) => assert!(s.contains("plan cache: hit"), "{s}"),
            other => panic!("expected explain, got {other}"),
        }
        // Display passthrough.
        assert!(interp.run(q).unwrap().to_string().contains("plan cache: hit"));
        // DDL invalidates cached plans.
        interp.run("define class extra ()").unwrap();
        match interp.run(q).unwrap() {
            Outcome::Explain(s) => assert!(s.contains("plan cache: miss"), "{s}"),
            other => panic!("expected explain, got {other}"),
        }
    }

    #[test]
    fn repeated_selects_share_one_cached_plan() {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class t (k: integer); \
                 advance to 1; \
                 create t (k := 1); \
                 tick",
            )
            .unwrap();
        for _ in 0..3 {
            match interp.run("select x from t x where x.k = 1").unwrap() {
                Outcome::Table(t) => assert_eq!(t.len(), 1),
                other => panic!("expected table, got {other}"),
            }
        }
        assert_eq!(interp.plans.len(), 1);
    }

    fn governed_db(interp: &mut Interpreter, per_class: usize) {
        interp
            .run_script(
                "define class a (v: integer); \
                 define class b (v: integer); \
                 define class c (v: integer); \
                 advance to 1",
            )
            .unwrap();
        for class in ["a", "b", "c"] {
            for i in 0..per_class {
                interp
                    .run(&format!("create {class} (v := {})", i % 7))
                    .unwrap();
            }
        }
        interp.run("tick").unwrap();
    }

    #[test]
    fn pathological_cross_product_trips_default_budget_then_session_recovers() {
        let mut interp = Interpreter::new();
        governed_db(&mut interp, 200);
        // 200³ = 8M bindings against the default 1M binding budget.
        let err = interp
            .run("select count(x) from a x, b y, c z")
            .unwrap_err();
        match err {
            QueryError::BudgetExceeded { spent, limit, progress, .. } => {
                assert!(spent > limit);
                assert!(progress.cost > 0);
            }
            other => panic!("expected budget error, got {other}"),
        }
        // The same session keeps serving immediately and correctly.
        match interp.run("select count(x) from a x where x.v = 0").unwrap() {
            Outcome::Table(t) => assert_eq!(t.rows[0][0], Value::Int(29)),
            other => panic!("expected table, got {other}"),
        }
        assert_eq!(interp.db().admission().active(), 0, "permit released");
    }

    #[test]
    fn configured_budget_is_honored_and_replaceable() {
        let mut interp = Interpreter::new();
        governed_db(&mut interp, 20);
        interp.set_budget(ExecBudget {
            max_bindings: 10,
            ..ExecBudget::unlimited()
        });
        let err = interp.run("select count(x) from a x, b y").unwrap_err();
        assert!(matches!(
            err,
            QueryError::BudgetExceeded { resource: Resource::Bindings, limit: 10, .. }
        ));
        interp.set_budget(ExecBudget::unlimited());
        match interp.run("select count(x) from a x, b y").unwrap() {
            Outcome::Table(t) => assert_eq!(t.rows[0][0], Value::Int(400)),
            other => panic!("expected table, got {other}"),
        }
    }

    #[test]
    fn overload_sheds_instead_of_queueing() {
        let mut interp = Interpreter::new();
        governed_db(&mut interp, 5);
        // A database clone shares the admission gate; hold its only slot.
        let gate_holder = interp.db().clone();
        gate_holder.admission().set_cap(1);
        let permit = gate_holder.admission().try_enter().unwrap();
        let err = interp.run("select x from a x").unwrap_err();
        assert!(matches!(err, QueryError::Overloaded { active: 1, cap: 1 }));
        drop(permit);
        assert!(interp.run("select x from a x").is_ok(), "slot freed");
    }

    #[test]
    fn panic_shield_reports_internal_and_keeps_serving() {
        let mut interp = Interpreter::new();
        governed_db(&mut interp, 5);
        let q = match parse("select x from a x") {
            Ok(Stmt::Select(s)) => s,
            _ => unreachable!(),
        };
        // Corrupt a plan invariant the executor trusts (projection slot
        // out of range) to force a panic inside `execute_plan`.
        let mut plan = crate::plan::plan_select(&q);
        plan.proj_vars = vec![usize::MAX];
        let panic_count = || {
            tchimera_obs::registry()
                .snapshot()
                .counter("query.panic.count")
                .unwrap_or(0)
        };
        let panics_before = panic_count();
        let err = interp.governed_query(&plan).unwrap_err();
        assert!(matches!(err, QueryError::Internal(_)), "got {err}");
        assert_eq!(panic_count(), panics_before + 1);
        // Nothing poisoned: the permit was released and queries still run.
        assert_eq!(interp.db().admission().active(), 0);
        match interp.run("select count(x) from a x").unwrap() {
            Outcome::Table(t) => assert_eq!(t.rows[0][0], Value::Int(5)),
            other => panic!("expected table, got {other}"),
        }
    }

    #[test]
    fn cancellation_stops_a_query_and_resets_for_the_next() {
        let mut interp = Interpreter::new();
        governed_db(&mut interp, 10);
        let token = interp.cancel_token();
        token.cancel();
        let err = interp.run("select x from a x").unwrap_err();
        assert!(matches!(err, QueryError::Cancelled { .. }), "got {err}");
        token.reset();
        assert!(interp.run("select x from a x").is_ok());
    }

    #[test]
    fn set_c_attr_via_tcql() {
        let mut interp = Interpreter::new();
        interp
            .run("define class project () c-attributes (average-participants: integer)")
            .unwrap();
        interp
            .run("set class attribute project.average-participants := 20")
            .unwrap();
        assert_eq!(
            interp
                .db()
                .c_attr(&"project".into(), &"average-participants".into())
                .unwrap(),
            &Value::Int(20)
        );
    }

    #[test]
    fn scrub_statements_run_governed() {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class person (name: temporal(string) immutable, address: string); \
                 create person (name := 'Bob', address := 'Milano'); \
                 tick 3",
            )
            .unwrap();
        // Status before any cycle: nothing recorded, nothing fenced.
        match interp.run("scrub status").unwrap() {
            Outcome::Scrub(s) => {
                assert!(s.contains("no cycle recorded"), "{s}");
                assert!(s.contains("quarantine: empty"), "{s}");
            }
            other => panic!("expected scrub status, got {other}"),
        }
        // A healthy database scrubs clean, and the report is recorded.
        match interp.run("scrub now").unwrap() {
            Outcome::Scrub(s) => assert!(s.contains("clean"), "{s}"),
            other => panic!("expected scrub report, got {other}"),
        }
        assert!(interp.last_scrub().is_some_and(tchimera_core::ScrubReport::clean));
        match interp.run("scrub status").unwrap() {
            Outcome::Scrub(s) => {
                assert!(s.contains("clean"), "{s}");
                assert!(s.contains("quarantine: empty"), "{s}");
            }
            other => panic!("expected scrub status, got {other}"),
        }
    }

    #[test]
    fn scrub_now_is_charged_against_the_budget() {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class person (name: temporal(string) immutable, address: string); \
                 create person (name := 'Ann', address := 'Genova')",
            )
            .unwrap();
        let mut tiny = ExecBudget::unlimited();
        tiny.max_cost = 1;
        interp.set_budget(tiny);
        match interp.run("scrub now").unwrap() {
            Outcome::Scrub(s) => assert!(s.contains("budget exhausted"), "{s}"),
            other => panic!("expected scrub report, got {other}"),
        }
        assert!(interp.last_scrub().unwrap().budget_exhausted);
        // A real budget finishes the cycle cleanly.
        interp.set_budget(ExecBudget::default());
        assert!(matches!(
            interp.run("scrub now").unwrap(),
            Outcome::Scrub(s) if s.contains("clean")
        ));
    }

    #[test]
    fn scrub_status_reports_the_quarantine() {
        let mut interp = Interpreter::new();
        interp.run("define class person (address: string)").unwrap();
        interp.db().quarantine_class(&"person".into());
        match interp.run("scrub status").unwrap() {
            Outcome::Scrub(s) => assert!(s.contains("quarantine: person"), "{s}"),
            other => panic!("expected scrub status, got {other}"),
        }
    }

    #[test]
    fn quarantined_class_refuses_selects_but_others_serve() {
        let mut interp = Interpreter::new();
        interp.run("define class person (address: string)").unwrap();
        interp.run("define class city (name: string)").unwrap();
        interp
            .run("create person (address := 'pine st')")
            .unwrap();
        interp.run("create city (name := 'milan')").unwrap();
        interp.db().quarantine_class(&"person".into());
        let err = interp.run("select p from person p").unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
        // Every other class keeps serving through the same session.
        match interp.run("select c from city c").unwrap() {
            Outcome::Table(r) => assert_eq!(r.rows.len(), 1),
            other => panic!("expected rows, got {other}"),
        }
        interp.db().unquarantine_class(&"person".into());
        assert!(interp.run("select p from person p").is_ok());
    }
}
