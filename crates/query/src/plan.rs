//! The TCQL query planner.
//!
//! [`plan_select`] decomposes a `SELECT`'s `WHERE` clause into the three
//! shapes the executor ([`crate::exec`]) knows how to exploit:
//!
//! * **prefilters** — conjuncts over a single range variable, pushed down
//!   so each candidate extent shrinks *before* the cross product;
//! * **hash joins** — equality conjuncts linking two distinct variables
//!   (`x.attr = y.attr`, `x = y.ref`), executed as build/probe hash
//!   lookups instead of nested loops;
//! * **residual** — everything else (multi-variable comparisons,
//!   quantified subexpressions), evaluated only on bindings that survive
//!   the earlier stages.
//!
//! Soundness notes:
//!
//! * `ALWAYS`/`SOMETIME` conjuncts quantify over the *common* lifespan of
//!   **all** bound objects, so they depend on every variable and are never
//!   pushed down.
//! * Under `DURING` the filter is existential over the joint event points
//!   of the whole binding, so per-variable pushdown is only a *necessary*
//!   condition: the executor still re-checks the full filter on surviving
//!   bindings, and no hash joins are extracted.
//! * Single-variable queries keep their conjuncts in source order as
//!   residual checks, preserving the reference evaluator's left-to-right
//!   `AND` semantics exactly.
//!
//! [`PlanCache`] memoizes plans (and the typecheck that precedes them) by
//! normalized AST, invalidated by the schema's generation stamp.

use std::collections::HashMap;
use std::sync::Arc;

use tchimera_core::{AttrName, Schema, Value};

use crate::ast::{CmpOp, Expr, Projection, Select, TimeSpec};
use crate::exec::{CExpr, ExecStats};
use crate::typecheck::{check_select, TypeError};

/// An equality conjunct linking two distinct range variables, executable
/// as a hash join: build a table keyed on one side, probe with the other.
#[derive(Clone, Debug)]
pub struct JoinPred {
    /// Variable index of the left key.
    pub left: usize,
    /// Variable index of the right key.
    pub right: usize,
    /// Key expression over `left` only.
    pub left_key: CExpr,
    /// Key expression over `right` only.
    pub right_key: CExpr,
    /// The whole conjunct (`left_key = right_key`), for use as a plain
    /// filter when another join already places this level.
    pub whole: CExpr,
    /// Position of the conjunct in the original `WHERE` (left to right).
    pub pos: usize,
}

/// An equality or membership conjunct over a single variable's attribute
/// whose candidate set the executor can seed from the temporal
/// attribute-value index (`Database::attr_index_probe`): `v.attr = lit`,
/// `v.attr at t = lit`, or an `OR` chain of such shapes over the same
/// `(var, attr, at)`.
///
/// The planner only records the *shape* — whether an index actually
/// covers the probe (declaration temporal, class known) is decided at
/// execution time, falling back to the scan path otherwise. The probe is
/// a necessary condition: the conjunct itself still runs as a prefilter
/// or residual on the narrowed candidates, so rows are unchanged.
#[derive(Clone, Debug)]
pub struct IndexPred {
    /// Variable index the predicate constrains.
    pub var: usize,
    /// The attribute probed.
    pub attr: AttrName,
    /// `Some(t)` for `v.attr AT t` (probe the point `t` whatever the
    /// query scope); `None` probes the query window.
    pub at: Option<u64>,
    /// Literal values of the equality (one) or membership disjunction.
    pub values: Vec<Value>,
}

/// A conjunct the planner could not push down or turn into a join.
#[derive(Clone, Debug)]
pub struct Residual {
    /// Compiled conjunct.
    pub expr: CExpr,
    /// Sorted, distinct variable indices the conjunct depends on
    /// (quantified conjuncts depend on *all* variables).
    pub vars: Vec<usize>,
    /// Position of the conjunct in the original `WHERE`.
    pub pos: usize,
}

/// A planned `SELECT`: the query plus its decomposed filter, ready for
/// [`crate::exec::execute_plan`]. Immutable once built, so it can be
/// cached and shared.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// The source query (owned: cached plans outlive the parsed statement).
    pub q: Select,
    /// Number of range variables.
    pub n: usize,
    /// Pushed-down single-variable conjuncts, per variable index.
    pub prefilters: Vec<Vec<CExpr>>,
    /// Extracted hash-join predicates.
    pub joins: Vec<JoinPred>,
    /// Conjuncts whose candidates the attribute-value index can seed
    /// (see [`IndexPred`]); coverage is decided at execution time.
    pub index_preds: Vec<IndexPred>,
    /// Residual conjuncts (point-scope queries only).
    pub residual: Vec<Residual>,
    /// The whole filter, compiled — evaluated existentially on surviving
    /// bindings under `DURING` (where conjunct-wise splitting is unsound).
    pub full_filter: Option<CExpr>,
    /// Variable index of each projection, aligned with `q.projections`.
    pub proj_vars: Vec<usize>,
    /// Compiled `ORDER BY` key (`var.attr` as a [`CExpr`]) plus the
    /// descending flag.
    pub order_key: Option<(CExpr, bool)>,
    /// `true` when the query is a bare `COUNT`.
    pub counting: bool,
    /// `true` for `DURING` scope.
    pub during: bool,
}

impl PlannedQuery {
    /// Total number of pushed-down conjuncts.
    #[must_use]
    pub fn pushdown_count(&self) -> usize {
        self.prefilters.iter().map(Vec::len).sum()
    }
}

/// Split a filter into its top-level conjuncts, left to right.
fn split_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::And(l, r) => {
            split_conjuncts(l, out);
            split_conjuncts(r, out);
        }
        other => out.push(other),
    }
}

/// Collect the variable indices an expression mentions, and whether it
/// contains a temporal quantifier (which implicitly depends on every
/// variable through the common-lifespan scope).
fn analyze(e: &Expr, vars: &[String], used: &mut Vec<bool>, quant: &mut bool) {
    match e {
        Expr::Lit(_) => {}
        Expr::Var(v) | Expr::Attr(v, _) | Expr::AttrAt(v, _, _) | Expr::IsMember(v, _) => {
            if let Some(i) = vars.iter().position(|n| n == v) {
                used[i] = true;
            }
        }
        Expr::Defined(i) | Expr::Not(i) => analyze(i, vars, used, quant),
        Expr::Cmp(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
            analyze(l, vars, used, quant);
            analyze(r, vars, used, quant);
        }
        Expr::Always(i) | Expr::Sometime(i) => {
            *quant = true;
            analyze(i, vars, used, quant);
        }
    }
}

/// Recognize the index-answerable shapes: `v.attr = lit` /
/// `lit = v.attr` (optionally `AT t`), or an `OR` chain of such over the
/// same `(var, attr, at)` — a membership probe. `null` literals
/// disqualify the conjunct (the index never stores nulls, and `= null`
/// has its own comparison semantics).
fn index_pred_of(e: &Expr, names: &[String]) -> Option<IndexPred> {
    fn leaf(e: &Expr, names: &[String]) -> Option<IndexPred> {
        let Expr::Cmp(CmpOp::Eq, l, r) = e else {
            return None;
        };
        let (attr_side, lit) = match (&**l, &**r) {
            (side, Expr::Lit(lit)) => (side, lit),
            (Expr::Lit(lit), side) => (side, lit),
            _ => return None,
        };
        let (var, attr, at) = match attr_side {
            Expr::Attr(v, a) => (v, a, None),
            Expr::AttrAt(v, a, t) => (v, a, Some(*t)),
            _ => return None,
        };
        let value = lit.to_value();
        if value.is_null() {
            return None;
        }
        let var = names.iter().position(|n| n == var)?;
        Some(IndexPred { var, attr: attr.clone(), at, values: vec![value] })
    }
    match e {
        Expr::Or(l, r) => {
            let mut a = index_pred_of(l, names)?;
            let b = index_pred_of(r, names)?;
            (a.var == b.var && a.attr == b.attr && a.at == b.at).then(|| {
                a.values.extend(b.values);
                a
            })
        }
        other => leaf(other, names),
    }
}

/// Plan a type-checked `SELECT`. Pure function of the AST: candidate-set
/// sizes (and thus the variable order) are only known at execution time,
/// so the plan records *what* can be pushed or joined and the executor
/// decides *in which order*.
#[must_use]
pub fn plan_select(q: &Select) -> PlannedQuery {
    let names: Vec<String> = q.vars.iter().map(|(_, v)| v.clone()).collect();
    let n = names.len();
    let during = matches!(q.time, TimeSpec::During(..));
    let counting = matches!(q.projections.as_slice(), [(_, Projection::Count)]);

    let mut prefilters: Vec<Vec<CExpr>> = vec![Vec::new(); n];
    let mut joins = Vec::new();
    let mut residual = Vec::new();
    let mut index_preds = Vec::new();

    if let Some(filter) = &q.filter {
        let mut conjuncts = Vec::new();
        split_conjuncts(filter, &mut conjuncts);
        for (pos, c) in conjuncts.into_iter().enumerate() {
            let mut used = vec![false; n];
            let mut quant = false;
            analyze(c, &names, &mut used, &mut quant);
            let cvars: Vec<usize> =
                (0..n).filter(|&i| used[i]).collect();
            let expr = CExpr::compile(c, &names);

            // Index-answerable equality/membership shapes narrow the
            // candidate set before any scan, in every scope (a DURING
            // probe is a necessary condition, rechecked like the other
            // pushdowns); the conjunct still runs below, so this changes
            // the candidates examined, never the rows.
            if !quant && cvars.len() == 1 {
                if let Some(p) = index_pred_of(c, &names) {
                    index_preds.push(p);
                }
            }

            if during {
                // DURING: pushdown is a sound necessary condition for
                // single-variable, quantifier-free conjuncts (the conjunct
                // must hold at some event point of that object alone); the
                // full filter is re-checked existentially on survivors.
                if n > 1 && !quant && cvars.len() == 1 {
                    prefilters[cvars[0]].push(expr);
                }
                continue;
            }
            // Quantified conjuncts scope over every bound object.
            let cvars = if quant { (0..n).collect() } else { cvars };
            // Single-variable queries keep source order (exact reference
            // semantics, including error behavior); no pushdown needed.
            if n > 1 && !quant && cvars.len() == 1 {
                prefilters[cvars[0]].push(expr);
                continue;
            }
            if n > 1 && !quant && cvars.len() == 2 {
                if let Expr::Cmp(CmpOp::Eq, l, r) = c {
                    let side = |e: &Expr| -> Option<usize> {
                        let mut u = vec![false; n];
                        let mut qf = false;
                        analyze(e, &names, &mut u, &mut qf);
                        let vs: Vec<usize> = (0..n).filter(|&i| u[i]).collect();
                        (!qf && vs.len() == 1).then(|| vs[0])
                    };
                    if let (Some(lv), Some(rv)) = (side(l), side(r)) {
                        if lv != rv {
                            joins.push(JoinPred {
                                left: lv,
                                right: rv,
                                left_key: CExpr::compile(l, &names),
                                right_key: CExpr::compile(r, &names),
                                whole: expr,
                                pos,
                            });
                            continue;
                        }
                    }
                }
            }
            residual.push(Residual { expr, vars: cvars, pos });
        }
    }

    let proj_vars = q
        .projections
        .iter()
        .map(|(v, _)| names.iter().position(|x| x == v).expect("checked"))
        .collect();
    let order_key = q.order.as_ref().map(|o| {
        let i = names.iter().position(|x| x == &o.var).expect("checked");
        (CExpr::Attr(i, o.attr.clone()), o.desc)
    });
    let full_filter = if during {
        q.filter.as_ref().map(|f| CExpr::compile(f, &names))
    } else {
        None
    };

    PlannedQuery {
        q: q.clone(),
        n,
        prefilters,
        joins,
        index_preds,
        residual,
        full_filter,
        proj_vars,
        order_key,
        counting,
        during,
    }
}

/// A small LRU cache of query plans, keyed on the normalized AST and the
/// schema generation stamp. A hit skips both typechecking and planning;
/// any class definition or drop bumps the stamp and invalidates every
/// cached entry for that schema.
#[derive(Debug)]
pub struct PlanCache {
    cap: usize,
    tick: u64,
    entries: HashMap<String, CacheEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    generation: u64,
    last_used: u64,
    plan: Arc<PlannedQuery>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(64)
    }
}

impl PlanCache {
    /// A cache holding at most `cap` plans (least recently used evicted).
    #[must_use]
    pub fn new(cap: usize) -> PlanCache {
        PlanCache { cap: cap.max(1), tick: 0, entries: HashMap::new() }
    }

    /// Number of cached plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no plans are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fetch the plan for `q`, typechecking and planning on a miss.
    /// Returns the plan and whether it was a cache hit; hit/miss traffic
    /// is recorded under `query.plan.cache.*`.
    pub fn get_or_plan(
        &mut self,
        schema: &Schema,
        q: &Select,
    ) -> Result<(Arc<PlannedQuery>, bool), TypeError> {
        crate::eval::touch_metrics();
        self.tick += 1;
        let key = format!("{q:?}");
        if let Some(e) = self.entries.get_mut(&key) {
            if e.generation == schema.generation() {
                e.last_used = self.tick;
                tchimera_obs::counter!("query.plan.cache.hit").inc();
                return Ok((Arc::clone(&e.plan), true));
            }
        }
        tchimera_obs::counter!("query.plan.cache.miss").inc();
        check_select(schema, q)?;
        let plan = Arc::new(plan_select(q));
        self.entries.insert(
            key,
            CacheEntry {
                generation: schema.generation(),
                last_used: self.tick,
                plan: Arc::clone(&plan),
            },
        );
        if self.entries.len() > self.cap {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        Ok((plan, false))
    }
}

/// Render an executed plan as the `EXPLAIN` report: per-variable pushdown
/// cardinalities, the chosen variable order, per-stage examined/output
/// counts and the plan-cache disposition.
#[must_use]
pub fn render_explain(plan: &PlannedQuery, stats: &ExecStats, cache_hit: bool) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let scope = match plan.q.time {
        TimeSpec::Now => "now".to_owned(),
        TimeSpec::AsOf(t) => format!("as of {t}"),
        TimeSpec::During(a, b) => format!("during [{a}, {b}]"),
    };
    let _ = writeln!(s, "plan ({scope}):");
    for v in &stats.vars {
        let _ = write!(
            s,
            "  var {}: {}  extent={}  prefilters={} -> {}",
            v.var, v.class, v.extent, v.pushed, v.after
        );
        if let Some(k) = v.indexed {
            let _ = write!(s, "  index->{k}");
        }
        let _ = writeln!(s);
    }
    let order: Vec<&str> = stats
        .order
        .iter()
        .map(|&i| plan.q.vars[i].1.as_str())
        .collect();
    let _ = writeln!(s, "  order: {}", order.join(", "));
    for l in &stats.levels {
        let name = plan.q.vars[l.var].1.as_str();
        let kind = if l.hash {
            "hash-join"
        } else if stats.vars[l.var].indexed.is_some() {
            "IndexScan"
        } else if l.first {
            "scan"
        } else {
            "nested-loop"
        };
        let _ = writeln!(
            s,
            "  {kind} {name}: examined={} out={} checks={}",
            l.examined, l.out, l.checks
        );
    }
    if plan.during {
        let _ = writeln!(s, "  residual: existential window filter on joined bindings");
    } else {
        let _ = writeln!(s, "  residual: {} conjunct(s)", plan.residual.len());
    }
    let _ = writeln!(s, "  partitions: {}", stats.partitions);
    let _ = writeln!(
        s,
        "  rows: {}  bindings examined: {}  naive cross product: {}",
        stats.rows, stats.bindings, stats.naive_bindings
    );
    let _ = write!(s, "  plan cache: {}", if cache_hit { "hit" } else { "miss" });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Stmt;
    use crate::parser::parse;
    use tchimera_core::{ClassDef, Database, Type};

    fn sel(src: &str) -> Select {
        match parse(src).unwrap() {
            Stmt::Select(s) => s,
            _ => unreachable!(),
        }
    }

    fn schema_db() -> Database {
        let mut db = Database::new();
        db.define_class(
            ClassDef::new("employee")
                .attr("salary", Type::temporal(Type::INTEGER))
                .attr("grade", Type::INTEGER),
        )
        .unwrap();
        db.define_class(ClassDef::new("manager").isa("employee")).unwrap();
        db
    }

    #[test]
    fn join_query_decomposes_into_pushdown_join_and_residual() {
        let p = plan_select(&sel(
            "select e from employee e, manager m \
             where e.grade > 1 and e.salary = m.salary \
             and sometime(e.salary > m.salary)",
        ));
        assert_eq!(p.prefilters[0].len(), 1);
        assert!(p.prefilters[1].is_empty());
        assert_eq!(p.joins.len(), 1);
        assert_eq!((p.joins[0].left, p.joins[0].right), (0, 1));
        // The quantified conjunct scopes over every variable.
        assert_eq!(p.residual.len(), 1);
        assert_eq!(p.residual[0].vars, vec![0, 1]);
        assert_eq!(p.pushdown_count(), 1);
    }

    #[test]
    fn index_pred_detection_covers_eq_membership_and_at_shapes() {
        let covered = [
            ("select e from employee e where e.salary = 5", 1, 1),
            ("select e from employee e where 5 = e.salary", 1, 1),
            ("select e from employee e where e.salary at 3 = 5", 1, 1),
            (
                "select e from employee e where e.salary = 5 or e.salary = 7",
                1,
                2,
            ),
            (
                "select e from employee e, manager m \
                 where e.salary = 5 and m.salary = 7",
                2,
                1,
            ),
            (
                "select e from employee e during [1, 9] where e.salary = 5",
                1,
                1,
            ),
        ];
        for (src, preds, values) in covered {
            let p = plan_select(&sel(src));
            assert_eq!(p.index_preds.len(), preds, "{src}");
            assert_eq!(p.index_preds[0].values.len(), values, "{src}");
        }
        let uncovered = [
            // Not an equality.
            "select e from employee e where e.salary > 5",
            // Null literal: the index never stores nulls.
            "select e from employee e where e.salary = null",
            // OR over different attributes is not a membership probe.
            "select e from employee e where e.salary = 5 or e.grade = 1",
            // OR mixing `AT` instants.
            "select e from employee e where e.salary at 1 = 5 or e.salary = 5",
            // Quantified conjuncts scope over the whole binding.
            "select e from employee e where sometime(e.salary = 5)",
            // Two-variable equality is a join, not an index probe.
            "select e from employee e, manager m where e.salary = m.salary",
        ];
        for src in uncovered {
            let p = plan_select(&sel(src));
            assert!(p.index_preds.is_empty(), "{src}");
        }
    }

    #[test]
    fn single_variable_queries_keep_source_order_residuals() {
        let p = plan_select(&sel(
            "select e from employee e where e.grade > 1 and e.salary > 10",
        ));
        assert_eq!(p.pushdown_count(), 0);
        assert!(p.joins.is_empty());
        assert_eq!(p.residual.len(), 2);
        assert_eq!((p.residual[0].pos, p.residual[1].pos), (0, 1));
    }

    #[test]
    fn during_scope_never_hash_joins_and_keeps_full_filter() {
        let p = plan_select(&sel(
            "select e from employee e, manager m during [5, 20] \
             where e.grade > 1 and e.salary = m.salary",
        ));
        assert!(p.during);
        assert!(p.joins.is_empty());
        assert_eq!(p.prefilters[0].len(), 1);
        assert!(p.full_filter.is_some());
    }

    #[test]
    fn plan_cache_hits_and_schema_changes_invalidate() {
        let mut db = schema_db();
        let mut cache = PlanCache::new(8);
        let q = sel("select e from employee e where e.grade > 1");
        let (_, hit) = cache.get_or_plan(db.schema(), &q).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_plan(db.schema(), &q).unwrap();
        assert!(hit);
        assert_eq!(cache.len(), 1);
        // Any DDL bumps the schema generation and invalidates the entry.
        db.define_class(ClassDef::new("extra")).unwrap();
        let (_, hit) = cache.get_or_plan(db.schema(), &q).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_plan(db.schema(), &q).unwrap();
        assert!(hit);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let db = schema_db();
        let mut cache = PlanCache::new(2);
        let q1 = sel("select e from employee e");
        let q2 = sel("select e from employee e where e.grade > 1");
        let q3 = sel("select e from employee e where e.grade > 2");
        cache.get_or_plan(db.schema(), &q1).unwrap();
        cache.get_or_plan(db.schema(), &q2).unwrap();
        // Touch q1 so q2 is the LRU entry, then overflow with q3.
        cache.get_or_plan(db.schema(), &q1).unwrap();
        cache.get_or_plan(db.schema(), &q3).unwrap();
        assert_eq!(cache.len(), 2);
        let (_, hit) = cache.get_or_plan(db.schema(), &q1).unwrap();
        assert!(hit);
        let (_, hit) = cache.get_or_plan(db.schema(), &q2).unwrap();
        assert!(!hit, "q2 was least recently used and must be evicted");
        assert!(!cache.is_empty());
    }

    #[test]
    fn ill_typed_queries_are_not_cached() {
        let db = schema_db();
        let mut cache = PlanCache::new(8);
        let q = sel("select e from nosuch e");
        assert!(cache.get_or_plan(db.schema(), &q).is_err());
        assert!(cache.is_empty());
    }
}
