//! `tcql` — an interactive shell (and script runner) for TCQL.
//!
//! ```text
//! tcql                 # interactive REPL on an in-memory database
//! tcql script.tcql     # run a script file, print each outcome
//! ```

use std::io::{BufRead, Write};

use tchimera_query::{Interpreter, Outcome};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut interp = Interpreter::new();

    if let Some(path) = args.first() {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match interp.run_script(&src) {
            Ok(outcomes) => {
                for o in outcomes {
                    println!("{o}");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("TCQL shell — T_Chimera temporal object-oriented database");
    println!("type statements ending with `;`, or `quit;` to exit\n");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("tcql> ");
        } else {
            print!("  ... ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').trim().to_owned();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }
        if stmt.eq_ignore_ascii_case("quit") || stmt.eq_ignore_ascii_case("exit") {
            break;
        }
        match interp.run(&stmt) {
            Ok(Outcome::Ok) => println!("ok (now = {})", interp.db().now()),
            Ok(o) => println!("{o}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
