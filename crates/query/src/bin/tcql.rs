//! `tcql` — an interactive shell (and script runner) for TCQL.
//!
//! ```text
//! tcql                 # interactive REPL on an in-memory database
//! tcql script.tcql     # run a script file, print each outcome
//! ```
//!
//! Queries run under the resource governor (`DESIGN.md` §12); the
//! default budget can be tuned per session:
//!
//! ```text
//! tcql --max-bindings N --max-rows N --max-bytes N --max-cost N
//! tcql --unlimited     # lift every limit (cancellation still works)
//! ```

use std::io::{BufRead, Write};

use tchimera_query::{ExecBudget, Interpreter, Outcome};

fn usage() -> ! {
    eprintln!(
        "usage: tcql [--max-bindings N] [--max-rows N] [--max-bytes N] \
         [--max-cost N] [--unlimited] [script.tcql]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut interp = Interpreter::new();

    let mut budget = ExecBudget::default();
    let mut script: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut limit = |slot: &mut u64| match it.next().and_then(|v| v.parse().ok()) {
            Some(n) => *slot = n,
            None => usage(),
        };
        match arg.as_str() {
            "--max-bindings" => limit(&mut budget.max_bindings),
            "--max-rows" => limit(&mut budget.max_rows),
            "--max-bytes" => limit(&mut budget.max_bytes),
            "--max-cost" => limit(&mut budget.max_cost),
            "--unlimited" => budget = ExecBudget::unlimited(),
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ if script.is_none() => script = Some(arg),
            _ => usage(),
        }
    }
    interp.set_budget(budget);

    if let Some(path) = script {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match interp.run_script(&src) {
            Ok(outcomes) => {
                for o in outcomes {
                    println!("{o}");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("TCQL shell — T_Chimera temporal object-oriented database");
    println!("type statements ending with `;`, or `quit;` to exit\n");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("tcql> ");
        } else {
            print!("  ... ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').trim().to_owned();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }
        if stmt.eq_ignore_ascii_case("quit") || stmt.eq_ignore_ascii_case("exit") {
            break;
        }
        match interp.run(&stmt) {
            Ok(Outcome::Ok) => println!("ok (now = {})", interp.db().now()),
            Ok(o) => println!("{o}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
