//! TCQL query evaluation.

use std::fmt;

use tchimera_core::{
    Database, Instant, Interval, IntervalSet, ModelError, Oid, TimeBound, Value,
};

use crate::ast::{CmpOp, Expr, Projection, Select, TimeSpec};

/// A tabular query result.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct QueryResult {
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of values.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows matched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

/// A runtime evaluation error.
#[derive(Clone, PartialEq, Debug)]
pub enum EvalError {
    /// Propagated model error.
    Model(ModelError),
    /// A non-boolean value reached a boolean context (only possible when
    /// the static checker was bypassed).
    NotBoolean,
    /// The query's [`ExecBudget`](crate::governor::ExecBudget) ran out of
    /// `resource` (`DESIGN.md` §12).
    Budget {
        /// Which limit tripped.
        resource: crate::governor::Resource,
        /// Units spent when the limit tripped.
        spent: u64,
        /// The configured limit.
        limit: u64,
        /// Work done up to the stop (for diagnosis).
        progress: crate::governor::Progress,
    },
    /// The query's [`CancelToken`](crate::governor::CancelToken) fired.
    Cancelled {
        /// Work done up to the stop.
        progress: crate::governor::Progress,
    },
    /// An internal invariant the evaluator relies on did not hold. Never
    /// expected; reported instead of panicking so one broken query cannot
    /// take the engine down.
    Internal(String),
}

impl EvalError {
    pub(crate) fn internal(msg: impl Into<String>) -> EvalError {
        EvalError::Internal(msg.into())
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Model(e) => write!(f, "{e}"),
            EvalError::NotBoolean => write!(f, "non-boolean value in boolean context"),
            EvalError::Budget { resource, spent, limit, progress } => write!(
                f,
                "query budget exceeded: {resource} {spent} > limit {limit} (progress: {progress})"
            ),
            EvalError::Cancelled { progress } => {
                write!(f, "query cancelled (progress: {progress})")
            }
            EvalError::Internal(msg) => write!(f, "internal query error: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ModelError> for EvalError {
    fn from(e: ModelError) -> Self {
        EvalError::Model(e)
    }
}

/// One assignment of objects to the query's range variables.
pub type Binding = Vec<(String, Oid)>;

fn bound(binding: &Binding, var: &str) -> Oid {
    binding
        .iter()
        .find(|(v, _)| v == var)
        .expect("validated by the parser")
        .1
}

/// Every metric name the query crate records (see `DESIGN.md` §9).
pub const QUERY_METRICS: &[&str] = &[
    "query.eval",
    "query.eval.bindings",
    "query.eval.during",
    "query.eval.rows",
    "query.plan.pushdowns",
    "query.plan.hash_joins",
    "query.plan.partitions",
    "query.plan.cache.hit",
    "query.plan.cache.miss",
    "query.plan.index_scans",
    "query.plan.index_candidates",
    "query.plan.index_fallbacks",
    "query.governor.active",
    "query.governor.admitted",
    "query.governor.shed",
    "query.governor.budget_exceeded",
    "query.governor.cancelled",
    "query.panic.count",
    "query.replica.refused_writes",
];

/// Register every query metric (at zero) so snapshots always carry the
/// full documented vocabulary.
pub fn touch_metrics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let r = tchimera_obs::registry();
        r.histogram("query.eval");
        r.counter("query.eval.bindings");
        r.counter("query.eval.during");
        r.counter("query.eval.rows");
        r.counter("query.plan.pushdowns");
        r.counter("query.plan.hash_joins");
        r.counter("query.plan.partitions");
        r.counter("query.plan.cache.hit");
        r.counter("query.plan.cache.miss");
        r.counter("query.plan.index_scans");
        r.counter("query.plan.index_candidates");
        r.counter("query.plan.index_fallbacks");
        r.gauge("query.governor.active");
        r.counter("query.governor.admitted");
        r.counter("query.governor.shed");
        r.counter("query.governor.budget_exceeded");
        r.counter("query.governor.cancelled");
        r.counter("query.panic.count");
        r.counter("query.replica.refused_writes");
    });
}

/// Execute a type-checked `SELECT` against the database through the query
/// planner (`crate::plan` / `crate::exec`).
///
/// Multiple range variables form a cross product filtered by `WHERE`
/// (the join idiom: `… from employee e, manager m where e.boss = m`).
/// The planner pushes single-variable conjuncts down as per-variable
/// prefilters, turns two-variable equality conjuncts into hash joins and
/// evaluates only the surviving residual per binding — but the produced
/// rows are identical (including order) to [`eval_select_naive`].
///
/// Temporal scope semantics:
///
/// * default — each variable ranges over `π(c, now)`, evaluation at `now`;
/// * `AS OF t` — ranges over `π(c, t)`, evaluation at `t` (time travel);
/// * `DURING [a, b]` — ranges over objects that were members at *some*
///   instant of the window; the filter passes if it holds at some instant
///   of the window (existential, evaluated at the history event points of
///   all bound objects); attribute projections yield the value at the
///   window end (clamped to `now`), and `HISTORY OF` projections are
///   restricted to the window.
///
/// The whole evaluation runs under a `query.eval` span; the
/// `query.eval.bindings` / `query.eval.rows` counters tally per-stage
/// work and result size (`DESIGN.md` §9).
pub fn eval_select(db: &Database, q: &Select) -> Result<QueryResult, EvalError> {
    let plan = crate::plan::plan_select(q);
    crate::exec::execute_plan(db, &plan, &crate::exec::ExecOptions::default())
        .map(|(result, _stats)| result)
}

/// The reference evaluator: an odometer over the full cross product of
/// candidate extents, re-evaluating the whole `WHERE` per binding.
///
/// [`eval_select`] (the planner) must produce exactly the same rows in the
/// same order; the property tests in `tests/planner_props.rs` enforce
/// this. Kept public so benchmarks can measure the planner against it.
pub fn eval_select_naive(db: &Database, q: &Select) -> Result<QueryResult, EvalError> {
    touch_metrics();
    let _span = tchimera_obs::span!("query.eval", vars = q.vars.len());
    if matches!(q.time, TimeSpec::During(..)) {
        tchimera_obs::counter!("query.eval.during").inc();
    }
    let now = db.now();

    // Candidate oids per variable, and the evaluation window.
    let window: Interval = match q.time {
        TimeSpec::Now => Interval::point(now),
        TimeSpec::AsOf(t) => Interval::point(Instant(t)),
        TimeSpec::During(a, b) => Interval::new(Instant(a), Instant(b).min(now)),
    };
    let mut candidates: Vec<(String, Vec<Oid>)> = Vec::with_capacity(q.vars.len());
    for (class_id, var) in &q.vars {
        let class = db.schema().class(class_id)?;
        let oids = match q.time {
            TimeSpec::Now => class.ext_at(now, now),
            TimeSpec::AsOf(t) => class.ext_at(Instant(t), now),
            TimeSpec::During(a, b) => {
                class.ext_during(Instant(a), Instant(b), now)
            }
        };
        candidates.push((var.clone(), oids));
    }

    let mut result = QueryResult {
        columns: q
            .projections
            .iter()
            .map(|(v, p)| projection_name(p, v))
            .collect(),
        rows: Vec::new(),
    };

    let counting = matches!(q.projections.as_slice(), [(_, Projection::Count)]);
    let mut count = 0i64;
    // Rows carrying an ORDER BY key, sorted after the scan.
    let mut keyed: Vec<(Value, Vec<Value>)> = Vec::new();

    // Odometer over the cross product of candidate sets.
    let sizes: Vec<usize> = candidates.iter().map(|(_, c)| c.len()).collect();
    if sizes.contains(&0) || window.is_empty() {
        if counting {
            result.rows.push(vec![Value::Int(0)]);
        }
        return Ok(result);
    }
    let mut idx = vec![0usize; candidates.len()];
    // Tallied locally, published once: the odometer loop stays free of
    // atomics.
    let mut bindings_examined = 0u64;
    // One binding, reused: only the oid slots change per step (var name
    // strings are never re-cloned).
    let mut binding: Binding = candidates
        .iter()
        .map(|(v, oids)| (v.clone(), oids[0]))
        .collect();
    'product: loop {
        bindings_examined += 1;
        for (slot, ((_, oids), &k)) in
            binding.iter_mut().zip(candidates.iter().zip(idx.iter()))
        {
            slot.1 = oids[k];
        }

        // Filter.
        let pass = match &q.filter {
            None => true,
            Some(filter) => match q.time {
                TimeSpec::During(..) => {
                    // Existential over the window's event points of all
                    // bound objects.
                    event_points(db, &binding, window, now)
                        .into_iter()
                        .any(|t| {
                            eval_expr(db, &binding, t, now, filter)
                                .map(|v| v == Value::Bool(true))
                                .unwrap_or(false)
                        })
                }
                _ => {
                    let t = window
                        .lo()
                        .ok_or_else(|| EvalError::internal("empty point window"))?;
                    eval_expr(db, &binding, t, now, filter)? == Value::Bool(true)
                }
            },
        };
        if pass {
            if counting {
                count += 1;
            } else {
                let t_eval = window
                    .hi()
                    .ok_or_else(|| EvalError::internal("empty evaluation window"))?;
                let mut row = Vec::with_capacity(q.projections.len());
                for (v, p) in &q.projections {
                    row.push(eval_projection(db, bound(&binding, v), p, t_eval, window, q)?);
                }
                if let Some(order) = &q.order {
                    let key = eval_expr(
                        db,
                        &binding,
                        t_eval,
                        now,
                        &Expr::Attr(order.var.clone(), order.attr.clone()),
                    )?;
                    keyed.push((key, row));
                } else {
                    result.rows.push(row);
                }
            }
        }

        // Advance the odometer.
        let mut k = idx.len();
        loop {
            if k == 0 {
                break 'product;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < sizes[k] {
                break;
            }
            idx[k] = 0;
        }
    }
    if counting {
        result.rows.push(vec![Value::Int(count)]);
    }
    if let Some(order) = &q.order {
        // A reversed comparator, not sort-then-reverse: the sort is stable,
        // so rows with equal keys keep their enumeration order in both
        // directions (reversing after sorting would flip the ties too).
        if order.desc {
            keyed.sort_by(|(a, _), (b, _)| b.cmp(a));
        } else {
            keyed.sort_by(|(a, _), (b, _)| a.cmp(b));
        }
        result.rows.extend(keyed.into_iter().map(|(_, row)| row));
    }
    if let Some(limit) = q.limit {
        result.rows.truncate(limit as usize);
    }
    tchimera_obs::counter!("query.eval.bindings").add(bindings_examined);
    tchimera_obs::counter!("query.eval.rows").add(result.rows.len() as u64);
    Ok(result)
}

pub(crate) fn projection_name(p: &Projection, var: &str) -> String {
    match p {
        Projection::Var => var.to_owned(),
        Projection::Attr(a) => format!("{var}.{a}"),
        Projection::HistoryOf(a) => format!("history of {var}.{a}"),
        Projection::SnapshotOf => format!("snapshot of {var}"),
        Projection::ClassOf => format!("class of {var}"),
        Projection::LifespanOf => format!("lifespan of {var}"),
        Projection::Count => format!("count({var})"),
    }
}

pub(crate) fn eval_projection(
    db: &Database,
    oid: Oid,
    p: &Projection,
    t: Instant,
    window: Interval,
    q: &Select,
) -> Result<Value, EvalError> {
    let now = db.now();
    Ok(match p {
        Projection::Var => Value::Oid(oid),
        Projection::Attr(a) => db.attr_at(oid, a, t)?,
        Projection::HistoryOf(a) => {
            let o = db.object(oid)?;
            match o.attr(a) {
                Some(Value::Temporal(h)) => {
                    if matches!(q.time, TimeSpec::During(..)) {
                        Value::Temporal(h.restrict(&IntervalSet::from(window), now))
                    } else {
                        Value::Temporal(h.clone())
                    }
                }
                Some(other) => other.clone(),
                None => Value::Null,
            }
        }
        Projection::SnapshotOf => db.snapshot(oid, t)?,
        Projection::ClassOf => {
            let o = db.object(oid)?;
            o.class_at(t, now)
                .map(|c| Value::str(c.as_str()))
                .unwrap_or(Value::Null)
        }
        // Count is handled by the caller (it aggregates over rows).
        Projection::Count => Value::Int(1),
        Projection::LifespanOf => {
            let o = db.object(oid)?;
            let end = match o.lifespan.end() {
                TimeBound::Fixed(e) => Value::Time(e),
                TimeBound::Now => Value::Null,
            };
            Value::record([
                ("start", Value::Time(o.lifespan.start())),
                ("end", end),
            ])
        }
    })
}

/// Evaluate an expression under a variable binding at instant `t`.
pub fn eval_expr(
    db: &Database,
    binding: &Binding,
    t: Instant,
    now: Instant,
    e: &Expr,
) -> Result<Value, EvalError> {
    Ok(match e {
        Expr::Lit(l) => l.to_value(),
        Expr::Var(v) => Value::Oid(bound(binding, v)),
        Expr::Attr(v, a) => db.attr_at(bound(binding, v), a, t)?,
        Expr::AttrAt(v, a, at) => db.attr_at(bound(binding, v), a, Instant(*at))?,
        Expr::Defined(inner) => {
            let v = eval_expr(db, binding, t, now, inner)?;
            Value::Bool(!v.is_null())
        }
        Expr::Cmp(op, l, r) => {
            let lv = eval_expr(db, binding, t, now, l)?;
            let rv = eval_expr(db, binding, t, now, r)?;
            Value::Bool(compare(*op, &lv, &rv))
        }
        Expr::And(l, r) => {
            let lv = as_bool(eval_expr(db, binding, t, now, l)?)?;
            if !lv {
                Value::Bool(false)
            } else {
                Value::Bool(as_bool(eval_expr(db, binding, t, now, r)?)?)
            }
        }
        Expr::Or(l, r) => {
            let lv = as_bool(eval_expr(db, binding, t, now, l)?)?;
            if lv {
                Value::Bool(true)
            } else {
                Value::Bool(as_bool(eval_expr(db, binding, t, now, r)?)?)
            }
        }
        Expr::Not(inner) => Value::Bool(!as_bool(eval_expr(db, binding, t, now, inner)?)?),
        Expr::IsMember(v, c) => {
            let member = db
                .schema()
                .class(c)
                .map(|cl| cl.membership_of(bound(binding, v), now).contains(t))
                .unwrap_or(false);
            Value::Bool(member)
        }
        Expr::Always(inner) => {
            let scope = quantifier_scope(db, binding, t, now)?;
            let ok = event_points(db, binding, scope, now)
                .into_iter()
                .try_fold(true, |acc, tp| {
                    Ok::<bool, EvalError>(
                        acc && as_bool(eval_expr(db, binding, tp, now, inner)?)?,
                    )
                })?;
            Value::Bool(ok)
        }
        Expr::Sometime(inner) => {
            let scope = quantifier_scope(db, binding, t, now)?;
            let mut ok = false;
            for tp in event_points(db, binding, scope, now) {
                if as_bool(eval_expr(db, binding, tp, now, inner)?)? {
                    ok = true;
                    break;
                }
            }
            Value::Bool(ok)
        }
    })
}

/// The scope of `ALWAYS`/`SOMETIME`: the intersection of the bound
/// objects' lifespans, cut at the evaluation instant.
fn quantifier_scope(
    db: &Database,
    binding: &Binding,
    t: Instant,
    now: Instant,
) -> Result<Interval, EvalError> {
    let oids: Vec<Oid> = binding.iter().map(|(_, o)| *o).collect();
    quantifier_scope_oids(db, &oids, t, now)
}

/// [`quantifier_scope`] over a plain oid slice (the planner's compiled
/// bindings carry no variable names).
pub(crate) fn quantifier_scope_oids(
    db: &Database,
    oids: &[Oid],
    t: Instant,
    now: Instant,
) -> Result<Interval, EvalError> {
    let mut scope = Interval::new(Instant::ZERO, t);
    for oid in oids {
        scope = scope.intersect(db.object(*oid)?.lifespan.resolve(now));
    }
    Ok(scope)
}

pub(crate) fn as_bool(v: Value) -> Result<bool, EvalError> {
    match v {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        _ => Err(EvalError::NotBoolean),
    }
}

/// Three-valued-light comparison: `null = null` holds, `null` is never
/// ordered, values of different kinds are unequal and unordered.
pub(crate) fn compare(op: CmpOp, a: &Value, b: &Value) -> bool {
    use std::cmp::Ordering;
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Neq => a != b,
        _ => {
            if a.is_null() || b.is_null() {
                return false;
            }
            if std::mem::discriminant(a) != std::mem::discriminant(b) {
                return false;
            }
            let ord = a.cmp(b);
            match op {
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
                CmpOp::Eq | CmpOp::Neq => unreachable!(),
            }
        }
    }
}

/// The instants within `scope` at which the object's observable state can
/// change: the scope boundaries plus every run boundary of its temporal
/// attributes and class history. Expressions are piecewise-constant
/// between event points, so quantified evaluation needs only these.
fn event_points(db: &Database, binding: &Binding, scope: Interval, now: Instant) -> Vec<Instant> {
    let oids: Vec<Oid> = binding.iter().map(|(_, o)| *o).collect();
    event_points_oids(db, &oids, scope, now)
}

/// [`event_points`] over a plain oid slice.
pub(crate) fn event_points_oids(
    db: &Database,
    oids: &[Oid],
    scope: Interval,
    now: Instant,
) -> Vec<Instant> {
    let mut points = Vec::new();
    let (Some(lo), Some(hi)) = (scope.lo(), scope.hi()) else {
        return points;
    };
    points.push(lo);
    points.push(hi);
    for oid in oids {
        if let Ok(o) = db.object(*oid) {
            let mut add = |t: Instant| {
                if scope.contains(t) {
                    points.push(t);
                }
            };
            for v in o.attrs.values() {
                if let Value::Temporal(h) = v {
                    for e in h.entries() {
                        add(e.start);
                        add(e.end.resolve(now).next());
                    }
                }
            }
            for e in o.class_history.entries() {
                add(e.start);
                add(e.end.resolve(now).next());
            }
        }
    }
    points.sort();
    points.dedup();
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use tchimera_core::{attrs, Attrs, ClassDef, ClassId, Type};

    fn db() -> Database {
        let mut db = Database::new();
        db.define_class(ClassDef::new("person")).unwrap();
        db.define_class(
            ClassDef::new("employee")
                .isa("person")
                .attr("salary", Type::temporal(Type::INTEGER))
                .attr("grade", Type::INTEGER),
        )
        .unwrap();
        db.define_class(ClassDef::new("manager").isa("employee")).unwrap();
        db.advance_to(Instant(10)).unwrap();
        // e0: salary 100→150 (at 30), grade 1.
        // e1: salary 80, grade 2; becomes manager at 40.
        // e2: terminated at 50.
        let e0 = db
            .create_object(
                &ClassId::from("employee"),
                attrs([("salary", Value::Int(100)), ("grade", Value::Int(1))]),
            )
            .unwrap();
        let e1 = db
            .create_object(
                &ClassId::from("employee"),
                attrs([("salary", Value::Int(80)), ("grade", Value::Int(2))]),
            )
            .unwrap();
        let e2 = db
            .create_object(
                &ClassId::from("employee"),
                attrs([("salary", Value::Int(60)), ("grade", Value::Int(3))]),
            )
            .unwrap();
        db.advance_to(Instant(30)).unwrap();
        db.set_attr(e0, &"salary".into(), Value::Int(150)).unwrap();
        db.advance_to(Instant(40)).unwrap();
        db.migrate(e1, &ClassId::from("manager"), Attrs::new()).unwrap();
        db.advance_to(Instant(50)).unwrap();
        db.terminate_object(e2).unwrap();
        db.advance_to(Instant(60)).unwrap();
        db
    }

    fn run(db: &Database, src: &str) -> QueryResult {
        match parse(src).unwrap() {
            crate::ast::Stmt::Select(s) => eval_select(db, &s).unwrap(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn select_now_filters_and_projects() {
        let db = db();
        let r = run(&db, "select e, e.salary from employee e where e.salary >= 100");
        assert_eq!(r.columns, vec!["e", "e.salary"]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0], vec![Value::Oid(Oid(0)), Value::Int(150)]);
        // All current employees (e2 is dead at 60, e1 is a manager-member).
        let all = run(&db, "select e from employee e");
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn as_of_time_travel() {
        let db = db();
        // At t=20: e0 salary 100, e2 alive.
        let r = run(&db, "select e, e.salary from employee e as of 20");
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows[0][1], Value::Int(100));
        // At t=20 the salary filter sees historical values.
        let r = run(&db, "select e from employee e as of 20 where e.salary > 90");
        assert_eq!(r.len(), 1);
        // Before anything existed.
        let r = run(&db, "select e from employee e as of 5");
        assert!(r.is_empty());
    }

    #[test]
    fn during_window() {
        let db = db();
        // e2 existed within [15, 45].
        let r = run(&db, "select e from employee e during [15, 45]");
        assert_eq!(r.len(), 3);
        // Window after e2's death.
        let r = run(&db, "select e from employee e during [55, 60]");
        assert_eq!(r.len(), 2);
        // Existential filter: e0's salary was 100 at some point in window.
        let r = run(
            &db,
            "select e from employee e during [15, 45] where e.salary = 100",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Oid(Oid(0)));
        // History projection restricted to the window.
        let r = run(&db, "select history of e.salary from employee e during [20, 35] where e.salary = 150");
        assert_eq!(r.len(), 1);
        match &r.rows[0][0] {
            Value::Temporal(h) => {
                assert_eq!(h.value_at(Instant(20), Instant(60)), Some(&Value::Int(100)));
                assert_eq!(h.value_at(Instant(35), Instant(60)), Some(&Value::Int(150)));
                assert_eq!(h.value_at(Instant(36), Instant(60)), None);
                assert_eq!(h.value_at(Instant(19), Instant(60)), None);
            }
            other => panic!("expected history, got {other}"),
        }
    }

    #[test]
    fn attr_at_and_temporal_predicates() {
        let db = db();
        let r = run(&db, "select e from employee e where e.salary at 20 = 100");
        assert_eq!(r.len(), 1);
        let r = run(&db, "select e from employee e where sometime(e.salary = 100)");
        assert_eq!(r.len(), 1);
        let r = run(&db, "select e from employee e where always(e.salary >= 80)");
        assert_eq!(r.len(), 2);
        let r = run(&db, "select e from employee e where always(e.salary >= 100)");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn membership_predicate_and_class_of() {
        let db = db();
        let r = run(&db, "select e, class of e from employee e where e in manager");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::str("manager"));
        // As of 20, e1 was not yet a manager.
        let r = run(&db, "select e from employee e as of 20 where e in manager");
        assert!(r.is_empty());
    }

    #[test]
    fn snapshot_and_lifespan_projections() {
        let db = db();
        let r = run(&db, "select snapshot of e, lifespan of e from employee e where e.grade = 1");
        assert_eq!(r.len(), 1);
        match &r.rows[0][0] {
            Value::Record(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected record, got {other}"),
        }
        assert_eq!(
            r.rows[0][1],
            Value::record([("start", Value::Time(Instant(10))), ("end", Value::Null)])
        );
    }

    #[test]
    fn null_semantics() {
        let mut db = db();
        let e3 = db
            .create_object(&ClassId::from("employee"), Attrs::new())
            .unwrap();
        db.tick();
        let r = run(&db, "select e from employee e where not defined(e.salary)");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Oid(e3));
        // null = null holds; null is not ordered.
        let r = run(&db, "select e from employee e where e.salary = null");
        assert_eq!(r.len(), 1);
        let r = run(&db, "select e from employee e where e.salary > null");
        assert!(r.is_empty());
    }

    #[test]
    fn display_table() {
        let db = db();
        let r = run(&db, "select e from employee e");
        let s = r.to_string();
        assert!(s.contains("(2 rows)"));
        assert!(s.starts_with("e\n"));
    }

    #[test]
    fn multi_variable_join() {
        let mut db = Database::new();
        db.define_class(tchimera_core::ClassDef::new("person")).unwrap();
        db.define_class(
            tchimera_core::ClassDef::new("staff")
                .isa("person")
                .attr("name", tchimera_core::Type::STRING)
                .attr(
                    "boss",
                    tchimera_core::Type::temporal(tchimera_core::Type::object("staff")),
                ),
        )
        .unwrap();
        db.advance_to(Instant(10)).unwrap();
        let boss = db
            .create_object(
                &tchimera_core::ClassId::from("staff"),
                tchimera_core::attrs([("name", Value::str("Boss"))]),
            )
            .unwrap();
        let a = db
            .create_object(
                &tchimera_core::ClassId::from("staff"),
                tchimera_core::attrs([("name", Value::str("Ann")), ("boss", Value::Oid(boss))]),
            )
            .unwrap();
        let b = db
            .create_object(
                &tchimera_core::ClassId::from("staff"),
                tchimera_core::attrs([("name", Value::str("Bob")), ("boss", Value::Oid(a))]),
            )
            .unwrap();
        db.advance_to(Instant(20)).unwrap();
        // Who reports to whom: join staff × staff on boss.
        let r = run(
            &db,
            "select e.name, m.name from staff e, staff m where e.boss = m",
        );
        assert_eq!(r.columns, vec!["e.name", "m.name"]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0], vec![Value::str("Ann"), Value::str("Boss")]);
        assert_eq!(r.rows[1], vec![Value::str("Bob"), Value::str("Ann")]);
        // Self pairs via bare-variable equality.
        let r = run(&db, "select e from staff e, staff m where e = m");
        assert_eq!(r.len(), 3);
        // Cross product without filter: 3 × 3 (via count).
        let r = run(&db, "select count(e) from staff e, staff m");
        assert_eq!(r.rows[0][0], Value::Int(9));
        // Transitive chain: Bob's boss's boss is Boss.
        let r = run(
            &db,
            "select e.name from staff e, staff m, staff t \
             where e.boss = m and m.boss = t and t.name = 'Boss'",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::str("Bob"));
        let _ = b;
    }

    #[test]
    fn join_respects_time_travel() {
        let mut db = Database::new();
        db.define_class(
            tchimera_core::ClassDef::new("emp")
                .attr("name", tchimera_core::Type::STRING)
                .attr(
                    "boss",
                    tchimera_core::Type::temporal(tchimera_core::Type::object("emp")),
                ),
        )
        .unwrap();
        db.advance_to(Instant(10)).unwrap();
        let x = db
            .create_object(
                &tchimera_core::ClassId::from("emp"),
                tchimera_core::attrs([("name", Value::str("X"))]),
            )
            .unwrap();
        let y = db
            .create_object(
                &tchimera_core::ClassId::from("emp"),
                tchimera_core::attrs([("name", Value::str("Y"))]),
            )
            .unwrap();
        let z = db
            .create_object(
                &tchimera_core::ClassId::from("emp"),
                tchimera_core::attrs([("name", Value::str("Z")), ("boss", Value::Oid(x))]),
            )
            .unwrap();
        db.advance_to(Instant(30)).unwrap();
        // Reorg: Z now reports to Y.
        db.set_attr(z, &"boss".into(), Value::Oid(y)).unwrap();
        db.advance_to(Instant(40)).unwrap();
        let r = run(&db, "select m.name from emp e, emp m where e.boss = m");
        assert_eq!(r.rows, vec![vec![Value::str("Y")]]);
        let r = run(&db, "select m.name from emp e, emp m as of 20 where e.boss = m");
        assert_eq!(r.rows, vec![vec![Value::str("X")]]);
        // DURING: both bosses appear somewhere in the window.
        let r = run(
            &db,
            "select m.name from emp e, emp m during [10, 40] where e.boss = m and e.name = 'Z'",
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn duplicate_range_variable_rejected() {
        assert!(crate::parser::parse("select e from a e, b e").is_err());
    }

    #[test]
    fn order_by_and_limit() {
        let db = db();
        // At now: e0 salary 150, e1 salary 80 (manager-member), e2 dead.
        let r = run(&db, "select e, e.salary from employee e order by e.salary");
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][1], Value::Int(80));
        assert_eq!(r.rows[1][1], Value::Int(150));
        // Descending.
        let r = run(&db, "select e.salary from employee e order by e.salary desc");
        assert_eq!(r.rows[0][0], Value::Int(150));
        // Limit.
        let r = run(
            &db,
            "select e.salary from employee e order by e.salary desc limit 1",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(150));
        // Limit without order keeps scan order.
        let r = run(&db, "select e from employee e limit 1");
        assert_eq!(r.len(), 1);
        // As-of ordering uses historical values (all three alive at 20).
        let r = run(
            &db,
            "select e.salary from employee e as of 20 order by e.salary",
        );
        assert_eq!(
            r.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::Int(60), Value::Int(80), Value::Int(100)]
        );
        // Static errors: unknown variable in ORDER BY; count + order.
        assert!(crate::parser::parse("select e from employee e order by q.salary").is_err());
        let q = match crate::parser::parse(
            "select count(e) from employee e order by e.salary",
        )
        .unwrap()
        {
            crate::ast::Stmt::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(crate::typecheck::check_select(db.schema(), &q).is_err());
    }

    #[test]
    fn order_by_desc_keeps_tie_enumeration_order() {
        let mut db = Database::new();
        db.define_class(ClassDef::new("t").attr("k", Type::INTEGER)).unwrap();
        db.advance_to(Instant(1)).unwrap();
        for k in [2i64, 1, 2, 1, 2] {
            db.create_object(&ClassId::from("t"), attrs([("k", Value::Int(k))]))
                .unwrap();
        }
        db.tick();
        // DESC must order by key only: rows with equal keys keep their
        // ascending enumeration (oid) order — the old sort-then-reverse
        // flipped the ties too.
        let expect = |oids: [u64; 5]| -> Vec<Vec<Value>> {
            oids.iter().map(|&o| vec![Value::Oid(Oid(o))]).collect()
        };
        let r = run(&db, "select x from t x order by x.k desc");
        assert_eq!(r.rows, expect([0, 2, 4, 1, 3]));
        let r = run(&db, "select x from t x order by x.k");
        assert_eq!(r.rows, expect([1, 3, 0, 2, 4]));
        // The reference evaluator agrees.
        let q = match parse("select x from t x order by x.k desc").unwrap() {
            crate::ast::Stmt::Select(s) => s,
            _ => unreachable!(),
        };
        assert_eq!(eval_select_naive(&db, &q).unwrap().rows, expect([0, 2, 4, 1, 3]));
    }
}
