//! A read-only TCQL session for replica databases.
//!
//! A log-shipping follower (see `tchimera-storage`'s `repl` module)
//! holds a database it must never mutate directly: every change arrives
//! through the replicated log, or the follower's state digest diverges
//! from the primary's. [`ReplicaSession`] is the query front door that
//! enforces this at the language level — it runs the read-only subset
//! of TCQL (`SELECT`, `EXPLAIN`, `SHOW CLASS`, `COMPARE`, and the
//! `CHECK …` family) under the same governor as the primary's
//! [`Interpreter`](crate::Interpreter), and refuses every mutating
//! statement with [`QueryError::ReadOnly`] before it touches the model.
//!
//! Unlike the interpreter, the session does not own its database: the
//! follower's state advances between statements as frames apply, so the
//! caller passes the current view (typically obtained from the
//! replica's staleness-bounded `read_view`) per call.

use tchimera_core::Database;

use crate::ast::Stmt;
use crate::governor::{CancelToken, ExecBudget};
use crate::interp::{constraint_of, describe_class, governed_query, Outcome, QueryError};
use crate::parser::{parse, parse_script};
use crate::plan::PlanCache;

/// A governed, read-only TCQL session over databases it does not own.
///
/// Carries the same per-session state as an
/// [`Interpreter`](crate::Interpreter) — a plan cache and an
/// [`ExecBudget`] — but executes only statements that cannot modify the
/// database. Mutating statements (DDL, DML, clock movement) fail with
/// [`QueryError::ReadOnly`] without touching the database at all.
#[derive(Default)]
pub struct ReplicaSession {
    plans: PlanCache,
    budget: ExecBudget,
}

impl ReplicaSession {
    /// A fresh session with the default query budget.
    #[must_use]
    pub fn new() -> ReplicaSession {
        ReplicaSession::default()
    }

    /// The budget governing each query this session runs.
    pub fn budget(&self) -> &ExecBudget {
        &self.budget
    }

    /// Replace the per-query budget (applies to subsequent statements).
    pub fn set_budget(&mut self, budget: ExecBudget) {
        self.budget = budget;
    }

    /// The cancellation token attached to this session's queries; not
    /// auto-reset, so call [`CancelToken::reset`] before reuse.
    pub fn cancel_token(&self) -> CancelToken {
        self.budget.cancel.clone()
    }

    /// Parse, type-check and execute a single read-only statement
    /// against `db`.
    pub fn run(&mut self, db: &Database, src: &str) -> Result<Outcome, QueryError> {
        let stmt = parse(src)?;
        self.execute(db, stmt)
    }

    /// Run a `;`-separated script of read-only statements, stopping at
    /// the first error.
    pub fn run_script(&mut self, db: &Database, src: &str) -> Result<Vec<Outcome>, QueryError> {
        let stmts = parse_script(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.execute(db, stmt)?);
        }
        Ok(out)
    }

    /// Execute a parsed statement, refusing anything mutating.
    pub fn execute(&mut self, db: &Database, stmt: Stmt) -> Result<Outcome, QueryError> {
        if let Some(kind) = mutating_kind(&stmt) {
            tchimera_obs::counter!("query.replica.refused_writes").inc();
            return Err(QueryError::ReadOnly { stmt: kind });
        }
        Ok(match stmt {
            Stmt::Select(q) => {
                let (plan, _hit) = self.plans.get_or_plan(db.schema(), &q)?;
                let (table, _stats) = governed_query(db, &self.budget, &plan)?;
                Outcome::Table(table)
            }
            Stmt::Explain(q) => {
                let (plan, hit) = self.plans.get_or_plan(db.schema(), &q)?;
                let (_table, stats) = governed_query(db, &self.budget, &plan)?;
                Outcome::Explain(crate::plan::render_explain(&plan, &stats, hit))
            }
            Stmt::ShowClass(c) => Outcome::ClassInfo(describe_class(db, &c)?),
            Stmt::Compare { a, b } => Outcome::Equality(
                db.strongest_equality(tchimera_core::Oid(a), tchimera_core::Oid(b))?,
            ),
            Stmt::CheckConstraint(spec) => {
                Outcome::Constraint(db.check_constraint(&constraint_of(spec)))
            }
            Stmt::CheckConsistency => Outcome::Consistency(db.check_database()),
            Stmt::CheckInvariants => Outcome::Invariants(db.check_invariants()),
            // Replica scrubbing runs at the storage layer (the follower's
            // `scrub_cycle` with ScrubPull escalation), so no TCQL-level
            // cycle is ever recorded here — status still reports the
            // live quarantine set.
            Stmt::ScrubStatus => {
                Outcome::Scrub(crate::interp::render_scrub_status(None, db))
            }
            // `mutating_kind` covered everything else.
            _ => unreachable!("mutating statement slipped past the whitelist"),
        })
    }
}

/// `Some(kind)` if the statement would mutate the database.
fn mutating_kind(stmt: &Stmt) -> Option<&'static str> {
    match stmt {
        Stmt::DefineClass(_) => Some("DEFINE CLASS"),
        Stmt::DropClass(_) => Some("DROP CLASS"),
        Stmt::Create { .. } => Some("CREATE"),
        Stmt::Set { .. } => Some("SET"),
        Stmt::SetCAttr { .. } => Some("SET CLASS ATTRIBUTE"),
        Stmt::Migrate { .. } => Some("MIGRATE"),
        Stmt::Terminate { .. } => Some("TERMINATE"),
        Stmt::Tick(_) => Some("TICK"),
        Stmt::AdvanceTo(_) => Some("ADVANCE TO"),
        // A scrub repairs derived structures in place — a mutation the
        // follower must receive through the storage-layer ladder, never
        // through the query front door.
        Stmt::ScrubNow => Some("SCRUB NOW"),
        Stmt::Select(_)
        | Stmt::Explain(_)
        | Stmt::ShowClass(_)
        | Stmt::Compare { .. }
        | Stmt::CheckConstraint(_)
        | Stmt::CheckConsistency
        | Stmt::CheckInvariants
        | Stmt::ScrubStatus => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;

    fn populated() -> Database {
        let mut interp = Interpreter::new();
        interp
            .run_script(
                "define class person (name: temporal(string) immutable, address: string); \
                 define class employee under person (salary: temporal(integer)); \
                 advance to 10; \
                 create employee (name := 'Bob', address := 'Milano', salary := 100); \
                 tick 10; \
                 set #0.salary := 150",
            )
            .unwrap();
        std::mem::take(interp.db_mut())
    }

    #[test]
    fn read_only_statements_run() {
        let db = populated();
        let mut s = ReplicaSession::new();
        match s.run(&db, "select e, e.salary from employee e where e.salary > 120") {
            Ok(Outcome::Table(t)) => assert_eq!(t.len(), 1),
            other => panic!("expected rows, got {other:?}"),
        }
        assert!(matches!(
            s.run(&db, "explain select e from employee e"),
            Ok(Outcome::Explain(_))
        ));
        assert!(matches!(s.run(&db, "show class employee"), Ok(Outcome::ClassInfo(_))));
        match s.run(&db, "check consistency") {
            Ok(Outcome::Consistency(r)) => assert!(r.is_consistent()),
            other => panic!("expected consistency report, got {other:?}"),
        }
        assert!(matches!(s.run(&db, "check invariants"), Ok(Outcome::Invariants(_))));
        assert!(matches!(s.run(&db, "compare #0 #0"), Ok(Outcome::Equality(Some(_)))));
    }

    #[test]
    fn every_mutating_statement_is_refused_without_touching_the_db() {
        let db = populated();
        let before = db.export_state();
        let mut s = ReplicaSession::new();
        for src in [
            "define class dept (budget: integer)",
            "drop class employee",
            "create employee (name := 'Eve', address := 'Roma', salary := 1)",
            "set #0.salary := 999",
            "migrate #0 to person",
            "terminate #0",
            "tick 5",
            "advance to 99",
        ] {
            match s.run(&db, src) {
                Err(QueryError::ReadOnly { .. }) => {}
                other => panic!("{src:?}: expected ReadOnly refusal, got {other:?}"),
            }
        }
        // Byte-identical state: the refusals never reached the model.
        assert_eq!(
            tchimera_storage_free_digest(&before),
            tchimera_storage_free_digest(&db.export_state())
        );
    }

    /// The query crate cannot see the storage digest; hashing the
    /// exported state's debug form is enough for "untouched".
    fn tchimera_storage_free_digest(state: &tchimera_core::DatabaseState) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        format!("{state:?}").hash(&mut h);
        h.finish()
    }

    #[test]
    fn scripts_stop_at_the_first_write() {
        let db = populated();
        let mut s = ReplicaSession::new();
        let err = s
            .run_script(&db, "check consistency; tick 1; check invariants")
            .unwrap_err();
        assert!(matches!(err, QueryError::ReadOnly { stmt: "TICK" }));
    }

    #[test]
    fn scrub_now_is_refused_but_status_serves() {
        let db = populated();
        let mut s = ReplicaSession::new();
        let err = s.run(&db, "scrub now").unwrap_err();
        assert!(matches!(err, QueryError::ReadOnly { stmt: "SCRUB NOW" }));
        match s.run(&db, "scrub status") {
            Ok(Outcome::Scrub(out)) => {
                assert!(out.contains("quarantine: empty"), "{out}");
            }
            other => panic!("expected scrub status, got {other:?}"),
        }
    }
}
