//! The TCQL abstract syntax tree.

use tchimera_core::{AttrName, ClassDef, ClassId, Oid, Value};

/// A literal value in query source.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// `null`
    Null,
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `true` / `false`
    Bool(bool),
    /// String literal.
    Str(String),
    /// Oid literal `#n`.
    Oid(u64),
    /// Set literal `{l1, …, ln}`.
    Set(Vec<Literal>),
    /// List literal `[l1, …, ln]`.
    List(Vec<Literal>),
}

impl Literal {
    /// Lower to a model value.
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Null => Value::Null,
            Literal::Int(v) => Value::Int(*v),
            Literal::Real(v) => Value::Real(*v),
            Literal::Bool(v) => Value::Bool(*v),
            Literal::Str(s) => Value::str(s.clone()),
            Literal::Oid(v) => Value::Oid(Oid(*v)),
            Literal::Set(xs) => Value::set(xs.iter().map(Literal::to_value)),
            Literal::List(xs) => Value::list(xs.iter().map(Literal::to_value)),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A boolean/value expression over the range variables of a `SELECT`.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal.
    Lit(Literal),
    /// A bare range variable — evaluates to the bound object's oid
    /// (enables join predicates like `e.boss = m`).
    Var(String),
    /// `var.attr` — the attribute value at the evaluation instant
    /// (temporal attributes resolve through their history).
    Attr(String, AttrName),
    /// `var.attr AT t` — the attribute value at an explicit instant.
    AttrAt(String, AttrName, u64),
    /// `DEFINED(e)` — `e` evaluates to a non-null value.
    Defined(Box<Expr>),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `var IN class` — membership of the bound object in a class at the
    /// evaluation instant.
    IsMember(String, ClassId),
    /// `ALWAYS(e)` — `e` holds at every instant of the bound objects'
    /// common lifespan (up to the evaluation instant).
    Always(Box<Expr>),
    /// `SOMETIME(e)` — `e` held at some instant of that lifespan.
    Sometime(Box<Expr>),
}

/// A projection of a `SELECT`.
#[derive(Clone, PartialEq, Debug)]
pub enum Projection {
    /// `var` — the oid of the range object.
    Var,
    /// `var.attr` — attribute value at the evaluation instant.
    Attr(AttrName),
    /// `HISTORY OF var.attr` — the full (window-restricted) history.
    HistoryOf(AttrName),
    /// `SNAPSHOT OF var` — the `snapshot` function (Section 5.3).
    SnapshotOf,
    /// `CLASS OF var` — the most specific class at the evaluation instant.
    ClassOf,
    /// `LIFESPAN OF var` — the object lifespan.
    LifespanOf,
    /// `COUNT(var)` — the number of qualifying objects (must be the only
    /// projection).
    Count,
}

/// The temporal scope of a `SELECT` (defaults to the current instant).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TimeSpec {
    /// Evaluate at `now`.
    Now,
    /// `AS OF t` — evaluate at a past instant (ranges over `π(c, t)`).
    AsOf(u64),
    /// `DURING [a, b]` — range over objects ever a member within the
    /// window; histories restricted to it.
    During(u64, u64),
}

/// A `SELECT` statement. Multiple range variables form a (temporal)
/// cross product filtered by `WHERE` — the join idiom:
///
/// ```text
/// select e.name, m.name from employee e, manager m where e.boss = m
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Select {
    /// Projections, left to right, each naming the variable it projects.
    pub projections: Vec<(String, Projection)>,
    /// The range variables: `(class, name)` pairs, in declaration order.
    pub vars: Vec<(ClassId, String)>,
    /// Temporal scope.
    pub time: TimeSpec,
    /// Optional filter.
    pub filter: Option<Expr>,
    /// `ORDER BY var.attr [DESC]`.
    pub order: Option<OrderBy>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

/// An `ORDER BY` clause.
#[derive(Clone, PartialEq, Debug)]
pub struct OrderBy {
    /// The range variable.
    pub var: String,
    /// The attribute supplying the sort key (evaluated like `var.attr`).
    pub attr: AttrName,
    /// `true` for descending order.
    pub desc: bool,
}

impl Select {
    /// The class a variable ranges over.
    pub fn class_of(&self, var: &str) -> Option<&ClassId> {
        self.vars
            .iter()
            .find(|(_, v)| v == var)
            .map(|(c, _)| c)
    }
}

/// The constraint kinds expressible in TCQL (lowered to
/// [`tchimera_core::Constraint`]).
#[derive(Clone, PartialEq, Debug)]
pub enum ConstraintSpec {
    /// `covered class.attr`
    Covered(ClassId, AttrName),
    /// `non-decreasing class.attr`
    NonDecreasing(ClassId, AttrName),
    /// `constant class.attr`
    Constant(ClassId, AttrName),
    /// `never-null class.attr`
    NeverNull(ClassId, AttrName),
    /// `range class.attr [min, max] (always|sometime)`
    Range {
        /// The constrained class.
        class: ClassId,
        /// The attribute.
        attr: AttrName,
        /// Lower bound.
        min: Literal,
        /// Upper bound.
        max: Literal,
        /// `true` = always, `false` = sometime.
        always: bool,
    },
}

/// A TCQL statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `DEFINE CLASS …`
    DefineClass(ClassDef),
    /// `DROP CLASS name`
    DropClass(ClassId),
    /// `CREATE class (a := lit, …)`
    Create {
        /// Target class.
        class: ClassId,
        /// Initial bindings.
        init: Vec<(AttrName, Literal)>,
    },
    /// `SET #oid.attr := lit`
    Set {
        /// Target object.
        oid: u64,
        /// Attribute.
        attr: AttrName,
        /// New value.
        value: Literal,
    },
    /// `SET CLASS ATTRIBUTE class.attr := lit`
    SetCAttr {
        /// Target class.
        class: ClassId,
        /// C-attribute.
        attr: AttrName,
        /// New value.
        value: Literal,
    },
    /// `MIGRATE #oid TO class (a := lit, …)`
    Migrate {
        /// Target object.
        oid: u64,
        /// Destination class.
        to: ClassId,
        /// Bindings for acquired attributes.
        init: Vec<(AttrName, Literal)>,
    },
    /// `TERMINATE #oid`
    Terminate {
        /// Target object.
        oid: u64,
    },
    /// `TICK [n]`
    Tick(u64),
    /// `ADVANCE TO t`
    AdvanceTo(u64),
    /// A query.
    Select(Select),
    /// `EXPLAIN SELECT …` — run the query and report the chosen plan
    /// with per-stage cardinalities instead of the rows.
    Explain(Select),
    /// `SHOW CLASS name`
    ShowClass(ClassId),
    /// `COMPARE #a #b` — report the strongest equality notion holding
    /// between two objects (Definitions 5.7–5.10).
    Compare {
        /// First object.
        a: u64,
        /// Second object.
        b: u64,
    },
    /// `CHECK CONSTRAINT <kind> class.attr …` — evaluate a temporal
    /// integrity constraint (Section 7 future work).
    CheckConstraint(ConstraintSpec),
    /// `CHECK CONSISTENCY`
    CheckConsistency,
    /// `CHECK INVARIANTS`
    CheckInvariants,
    /// `SCRUB NOW` — run one governed integrity-scrub cycle
    /// (detection plus in-place rung-1 repair of derived structures).
    ScrubNow,
    /// `SCRUB STATUS` — report the last scrub cycle's outcome and the
    /// live quarantine set without doing any work.
    ScrubStatus,
}
