//! The TCQL recursive-descent parser.

use std::fmt;

use tchimera_core::{AttrDecl, ClassDef, ClassId, MethodSig, Type};

use crate::ast::{CmpOp, ConstraintSpec, Expr, Literal, Projection, Select, Stmt, TimeSpec};
use crate::token::{lex, LexError, Token, TokenKind};

/// What went wrong, beyond the human-readable message.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ParseErrorKind {
    /// Malformed input (the common case).
    #[default]
    Syntax,
    /// The input nests deeper than [`MAX_PARSE_DEPTH`]; the parser stops
    /// instead of overflowing its stack.
    TooDeep,
}

/// A parse error with source offset.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Description.
    pub message: String,
    /// Error classification.
    pub kind: ParseErrorKind,
}

impl ParseError {
    fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
            kind: ParseErrorKind::Syntax,
        }
    }

    fn too_deep(offset: usize) -> ParseError {
        ParseError {
            offset,
            message: format!(
                "expression nests deeper than {MAX_PARSE_DEPTH} levels"
            ),
            kind: ParseErrorKind::TooDeep,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.offset, e.message)
    }
}

/// Maximum nesting depth the recursive-descent parser accepts. Each
/// level costs a handful of stack frames, so the limit keeps adversarial
/// input (e.g. ten thousand opening parentheses) from overflowing the
/// stack while leaving two-hundred-plus levels for real queries.
pub const MAX_PARSE_DEPTH: usize = 256;

/// Parse a single TCQL statement.
pub fn parse(src: &str) -> Result<Stmt, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let stmt = p.statement()?;
    // Allow an optional trailing semicolon.
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script into statements (empty segments skipped).
pub fn parse_script(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.at_eof() && !p.eat(&TokenKind::Semicolon) {
            return Err(p.err("expected `;` between statements"));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current nesting depth of the recursive grammar rules.
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    /// Run one level of a recursive grammar rule, refusing to descend past
    /// [`MAX_PARSE_DEPTH`].
    fn descend<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(ParseError::too_deep(self.peek().offset));
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(
            self.peek().offset,
            format!("{} (found {})", msg.into(), self.peek().kind),
        )
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}")))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err("expected end of statement"))
        }
    }

    /// Peek a keyword (case-insensitive identifier match).
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn u64_lit(&mut self) -> Result<u64, ParseError> {
        match self.peek().kind {
            TokenKind::Int(v) if v >= 0 => {
                self.bump();
                Ok(v as u64)
            }
            _ => Err(self.err("expected a non-negative integer")),
        }
    }

    fn oid_lit(&mut self) -> Result<u64, ParseError> {
        match self.peek().kind {
            TokenKind::OidLit(v) => {
                self.bump();
                Ok(v)
            }
            _ => Err(self.err("expected an oid literal `#n`")),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("define") {
            self.expect_kw("class")?;
            return self.define_class();
        }
        if self.eat_kw("drop") {
            self.expect_kw("class")?;
            return Ok(Stmt::DropClass(ClassId::from(self.ident()?)));
        }
        if self.eat_kw("create") {
            let class = ClassId::from(self.ident()?);
            let init = if self.at(&TokenKind::LParen) {
                self.bindings()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::Create { class, init });
        }
        if self.eat_kw("set") {
            if self.eat_kw("class") {
                self.expect_kw("attribute")?;
                let class = ClassId::from(self.ident()?);
                self.expect(&TokenKind::Dot)?;
                let attr = self.ident()?.into();
                self.expect(&TokenKind::Assign)?;
                let value = self.literal()?;
                return Ok(Stmt::SetCAttr { class, attr, value });
            }
            let oid = self.oid_lit()?;
            self.expect(&TokenKind::Dot)?;
            let attr = self.ident()?.into();
            self.expect(&TokenKind::Assign)?;
            let value = self.literal()?;
            return Ok(Stmt::Set { oid, attr, value });
        }
        if self.eat_kw("migrate") {
            let oid = self.oid_lit()?;
            self.expect_kw("to")?;
            let to = ClassId::from(self.ident()?);
            let init = if self.at(&TokenKind::LParen) {
                self.bindings()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::Migrate { oid, to, init });
        }
        if self.eat_kw("terminate") {
            let oid = self.oid_lit()?;
            return Ok(Stmt::Terminate { oid });
        }
        if self.eat_kw("tick") {
            let n = if matches!(self.peek().kind, TokenKind::Int(_)) {
                self.u64_lit()?
            } else {
                1
            };
            return Ok(Stmt::Tick(n));
        }
        if self.eat_kw("advance") {
            self.expect_kw("to")?;
            return Ok(Stmt::AdvanceTo(self.u64_lit()?));
        }
        if self.eat_kw("select") {
            return self.select();
        }
        if self.eat_kw("explain") {
            self.expect_kw("select")?;
            return match self.select()? {
                Stmt::Select(q) => Ok(Stmt::Explain(q)),
                _ => unreachable!("select() yields Stmt::Select"),
            };
        }
        if self.eat_kw("show") {
            self.expect_kw("class")?;
            return Ok(Stmt::ShowClass(ClassId::from(self.ident()?)));
        }
        if self.eat_kw("check") {
            if self.eat_kw("consistency") {
                return Ok(Stmt::CheckConsistency);
            }
            if self.eat_kw("invariants") {
                return Ok(Stmt::CheckInvariants);
            }
            if self.eat_kw("constraint") {
                return self.constraint_spec().map(Stmt::CheckConstraint);
            }
            return Err(self.err("expected `consistency`, `invariants` or `constraint`"));
        }
        if self.eat_kw("compare") {
            let a = self.oid_lit()?;
            let b = self.oid_lit()?;
            return Ok(Stmt::Compare { a, b });
        }
        if self.eat_kw("scrub") {
            if self.eat_kw("now") {
                return Ok(Stmt::ScrubNow);
            }
            if self.eat_kw("status") {
                return Ok(Stmt::ScrubStatus);
            }
            return Err(self.err("expected `now` or `status`"));
        }
        Err(self.err("expected a statement"))
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn constraint_spec(&mut self) -> Result<ConstraintSpec, ParseError> {
        let kind = self.ident()?.to_ascii_lowercase();
        let class = ClassId::from(self.ident()?);
        self.expect(&TokenKind::Dot)?;
        let attr: tchimera_core::AttrName = self.ident()?.into();
        Ok(match kind.as_str() {
            "covered" => ConstraintSpec::Covered(class, attr),
            "non-decreasing" => ConstraintSpec::NonDecreasing(class, attr),
            "constant" => ConstraintSpec::Constant(class, attr),
            "never-null" => ConstraintSpec::NeverNull(class, attr),
            "range" => {
                self.expect(&TokenKind::LBracket)?;
                let min = self.literal()?;
                self.expect(&TokenKind::Comma)?;
                let max = self.literal()?;
                self.expect(&TokenKind::RBracket)?;
                let always = if self.eat_kw("always") {
                    true
                } else if self.eat_kw("sometime") {
                    false
                } else {
                    return Err(self.err("expected `always` or `sometime`"));
                };
                ConstraintSpec::Range {
                    class,
                    attr,
                    min,
                    max,
                    always,
                }
            }
            other => {
                return Err(self.err(format!(
                    "unknown constraint kind `{other}` (expected covered, non-decreasing, constant, never-null or range)"
                )))
            }
        })
    }

    fn define_class(&mut self) -> Result<Stmt, ParseError> {
        let name = self.ident()?;
        let mut def = ClassDef::new(name);
        if self.eat_kw("under") {
            loop {
                def.superclasses.push(ClassId::from(self.ident()?));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::LParen)?;
        if !self.at(&TokenKind::RParen) {
            loop {
                let attr = self.attr_decl()?;
                def.attrs.push(attr);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        if self.eat_kw("c-attributes") {
            self.expect(&TokenKind::LParen)?;
            if !self.at(&TokenKind::RParen) {
                loop {
                    def.c_attrs.push(self.attr_decl()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        if self.eat_kw("methods") {
            def.methods = self.method_sigs()?;
        }
        if self.eat_kw("c-operations") {
            def.c_methods = self.method_sigs()?;
        }
        Ok(Stmt::DefineClass(def))
    }

    fn method_sigs(
        &mut self,
    ) -> Result<Vec<(tchimera_core::MethodName, MethodSig)>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut out = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let mname = self.ident()?;
                self.expect(&TokenKind::LParen)?;
                let mut inputs = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        inputs.push(self.type_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Colon)?;
                let output = self.type_expr()?;
                out.push((mname.into(), MethodSig { inputs, output }));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(out)
    }

    fn attr_decl(&mut self) -> Result<AttrDecl, ParseError> {
        let name = self.ident()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.type_expr()?;
        let immutable = self.eat_kw("immutable");
        Ok(AttrDecl {
            name: name.into(),
            ty,
            immutable,
        })
    }

    /// A type expression in the paper's concrete syntax.
    fn type_expr(&mut self) -> Result<Type, ParseError> {
        self.descend(Self::type_expr_inner)
    }

    fn type_expr_inner(&mut self) -> Result<Type, ParseError> {
        let head = self.ident()?;
        let lower = head.to_ascii_lowercase();
        Ok(match lower.as_str() {
            "integer" => Type::INTEGER,
            "real" => Type::REAL,
            "bool" | "boolean" => Type::BOOL,
            "character" | "char" => Type::CHARACTER,
            "string" => Type::STRING,
            "time" => Type::Time,
            "set-of" => {
                self.expect(&TokenKind::LParen)?;
                let inner = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                Type::set_of(inner)
            }
            "list-of" => {
                self.expect(&TokenKind::LParen)?;
                let inner = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                Type::list_of(inner)
            }
            "record-of" => {
                self.expect(&TokenKind::LParen)?;
                let mut fields = Vec::new();
                loop {
                    let n = self.ident()?;
                    self.expect(&TokenKind::Colon)?;
                    let t = self.type_expr()?;
                    if fields.iter().any(|(m, _): &(String, Type)| *m == n) {
                        return Err(self.err(format!("duplicate record field `{n}`")));
                    }
                    fields.push((n, t));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                Type::record_of(fields)
            }
            "temporal" => {
                self.expect(&TokenKind::LParen)?;
                let inner = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                Type::temporal(inner)
            }
            _ => Type::object(head),
        })
    }

    fn bindings(&mut self) -> Result<Vec<(tchimera_core::AttrName, Literal)>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut out = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let name = self.ident()?;
                self.expect(&TokenKind::Assign)?;
                let lit = self.literal()?;
                out.push((name.into(), lit));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(out)
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        self.descend(Self::literal_inner)
    }

    fn literal_inner(&mut self) -> Result<Literal, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Literal::Int(v))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(Literal::Real(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Literal::Str(s))
            }
            TokenKind::OidLit(v) => {
                self.bump();
                Ok(Literal::Oid(v))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("null") => {
                self.bump();
                Ok(Literal::Null)
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("true") => {
                self.bump();
                Ok(Literal::Bool(true))
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("false") => {
                self.bump();
                Ok(Literal::Bool(false))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut xs = Vec::new();
                if !self.at(&TokenKind::RBrace) {
                    loop {
                        xs.push(self.literal()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBrace)?;
                Ok(Literal::Set(xs))
            }
            TokenKind::LBracket => {
                self.bump();
                let mut xs = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    loop {
                        xs.push(self.literal()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Literal::List(xs))
            }
            _ => Err(self.err("expected a literal")),
        }
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn select(&mut self) -> Result<Stmt, ParseError> {
        // Projections are parsed name-agnostically first; the range
        // variables are validated after FROM.
        let mut raw: Vec<(Option<String>, Projection)> = Vec::new();
        loop {
            raw.push(self.projection()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut vars: Vec<(ClassId, String)> = Vec::new();
        loop {
            let class = ClassId::from(self.ident()?);
            let var = self.ident()?;
            if vars.iter().any(|(_, v)| *v == var) {
                return Err(self.err(format!("duplicate range variable `{var}`")));
            }
            vars.push((class, var));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let var_names: Vec<String> = vars.iter().map(|(_, v)| v.clone()).collect();
        // Validate projections against the declared variables.
        let mut projections = Vec::new();
        for (v, p) in raw {
            let v = v.expect("projections always name a variable");
            if !var_names.contains(&v) {
                return Err(ParseError::new(
                    0,
                    format!(
                        "unknown variable `{v}` (range variables: {})",
                        var_names.join(", ")
                    ),
                ));
            }
            projections.push((v, p));
        }
        let time = if self.eat_kw("as") {
            self.expect_kw("of")?;
            TimeSpec::AsOf(self.u64_lit()?)
        } else if self.eat_kw("during") {
            self.expect(&TokenKind::LBracket)?;
            let a = self.u64_lit()?;
            self.expect(&TokenKind::Comma)?;
            let b = self.u64_lit()?;
            self.expect(&TokenKind::RBracket)?;
            TimeSpec::During(a, b)
        } else {
            TimeSpec::Now
        };
        let filter = if self.eat_kw("where") {
            Some(self.expr(&var_names)?)
        } else {
            None
        };
        let order = if self.eat_kw("order") {
            self.expect_kw("by")?;
            let v = self.ident()?;
            if !var_names.contains(&v) {
                return Err(self.err(format!("unknown variable `{v}` in ORDER BY")));
            }
            self.expect(&TokenKind::Dot)?;
            let attr = self.ident()?.into();
            let desc = if self.eat_kw("desc") {
                true
            } else {
                self.eat_kw("asc");
                false
            };
            Some(crate::ast::OrderBy { var: v, attr, desc })
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            Some(self.u64_lit()?)
        } else {
            None
        };
        Ok(Stmt::Select(Select {
            projections,
            vars,
            time,
            filter,
            order,
            limit,
        }))
    }

    fn projection(&mut self) -> Result<(Option<String>, Projection), ParseError> {
        if self.at_kw("count") {
            // Lookahead: `count(` is the aggregate; a bare `count` can be
            // a variable name.
            let save = self.pos;
            self.bump();
            if self.eat(&TokenKind::LParen) {
                let v = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                return Ok((Some(v), Projection::Count));
            }
            self.pos = save;
        }
        if self.eat_kw("history") {
            self.expect_kw("of")?;
            let v = self.ident()?;
            self.expect(&TokenKind::Dot)?;
            let a = self.ident()?;
            return Ok((Some(v), Projection::HistoryOf(a.into())));
        }
        if self.eat_kw("snapshot") {
            self.expect_kw("of")?;
            let v = self.ident()?;
            return Ok((Some(v), Projection::SnapshotOf));
        }
        if self.eat_kw("class") {
            self.expect_kw("of")?;
            let v = self.ident()?;
            return Ok((Some(v), Projection::ClassOf));
        }
        if self.eat_kw("lifespan") {
            self.expect_kw("of")?;
            let v = self.ident()?;
            return Ok((Some(v), Projection::LifespanOf));
        }
        let v = self.ident()?;
        if self.eat(&TokenKind::Dot) {
            let a = self.ident()?;
            Ok((Some(v), Projection::Attr(a.into())))
        } else {
            Ok((Some(v), Projection::Var))
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence: OR < AND < NOT < comparison < primary)
    // ------------------------------------------------------------------

    fn expr(&mut self, vars: &[String]) -> Result<Expr, ParseError> {
        // Every cycle through the expression grammar re-enters here (via
        // `primary`'s parenthesized/quantified forms), so this single
        // depth guard bounds the whole expression recursion.
        self.descend(|p| p.or_expr(vars))
    }

    fn or_expr(&mut self, vars: &[String]) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr(vars)?;
        while self.eat_kw("or") {
            let rhs = self.and_expr(vars)?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self, vars: &[String]) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr(vars)?;
        while self.eat_kw("and") {
            let rhs = self.not_expr(vars)?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self, vars: &[String]) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            // Self-recursive without passing through `expr`: needs its
            // own depth guard (`not not not …`).
            self.descend(|p| Ok(Expr::Not(Box::new(p.not_expr(vars)?))))
        } else {
            self.cmp_expr(vars)
        }
    }

    fn cmp_expr(&mut self, vars: &[String]) -> Result<Expr, ParseError> {
        let lhs = self.primary(vars)?;
        let op = match self.peek().kind {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Neq => Some(CmpOp::Neq),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.primary(vars)?;
            Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn primary(&mut self, vars: &[String]) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::LParen) {
            let e = self.expr(vars)?;
            self.expect(&TokenKind::RParen)?;
            return Ok(e);
        }
        if self.eat_kw("defined") {
            self.expect(&TokenKind::LParen)?;
            let e = self.expr(vars)?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Defined(Box::new(e)));
        }
        if self.eat_kw("always") {
            self.expect(&TokenKind::LParen)?;
            let e = self.expr(vars)?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Always(Box::new(e)));
        }
        if self.eat_kw("sometime") {
            self.expect(&TokenKind::LParen)?;
            let e = self.expr(vars)?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Sometime(Box::new(e)));
        }
        // Variable path or literal.
        if let TokenKind::Ident(s) = &self.peek().kind {
            let s = s.clone();
            if vars.contains(&s) {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let a = self.ident()?;
                    if self.eat_kw("at") {
                        let t = self.u64_lit()?;
                        return Ok(Expr::AttrAt(s, a.into(), t));
                    }
                    return Ok(Expr::Attr(s, a.into()));
                }
                if self.eat_kw("in") {
                    let c = self.ident()?;
                    return Ok(Expr::IsMember(s, ClassId::from(c)));
                }
                // A bare variable: the bound object's oid (join idiom).
                return Ok(Expr::Var(s));
            }
        }
        Ok(Expr::Lit(self.literal()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_define_class() {
        let s = parse(
            "define class project under base ( \
               name: temporal(string) immutable, \
               objective: string, \
               workplan: set-of(task), \
               participants: temporal(set-of(person)) ) \
             c-attributes ( average-participants: integer ) \
             methods ( add-participant(person): project )",
        )
        .unwrap();
        match s {
            Stmt::DefineClass(def) => {
                assert_eq!(def.name, ClassId::from("project"));
                assert_eq!(def.superclasses, vec![ClassId::from("base")]);
                assert_eq!(def.attrs.len(), 4);
                assert!(def.attrs[0].immutable);
                assert_eq!(def.attrs[0].ty, Type::temporal(Type::STRING));
                assert_eq!(
                    def.attrs[3].ty,
                    Type::temporal(Type::set_of(Type::object("person")))
                );
                assert_eq!(def.c_attrs.len(), 1);
                assert_eq!(def.methods.len(), 1);
                assert_eq!(def.methods[0].1.output, Type::object("project"));
            }
            other => panic!("wrong stmt: {other:?}"),
        }
    }

    #[test]
    fn parse_c_operations() {
        let s = parse(
            "define class project () \
             c-attributes (average-participants: integer) \
             c-operations (recompute-average(): integer, reset(integer): bool)",
        )
        .unwrap();
        match s {
            Stmt::DefineClass(def) => {
                assert_eq!(def.c_methods.len(), 2);
                assert_eq!(def.c_methods[0].1.output, Type::INTEGER);
                assert!(def.c_methods[0].1.inputs.is_empty());
                assert_eq!(def.c_methods[1].1.inputs, vec![Type::INTEGER]);
            }
            other => panic!("wrong stmt: {other:?}"),
        }
    }

    #[test]
    fn parse_record_type() {
        let s = parse("define class c ( r: record-of(a: integer, b: real) )").unwrap();
        match s {
            Stmt::DefineClass(def) => {
                assert_eq!(
                    def.attrs[0].ty,
                    Type::record_of([("a", Type::INTEGER), ("b", Type::REAL)])
                );
            }
            _ => unreachable!(),
        }
        assert!(parse("define class c ( r: record-of(a: integer, a: real) )").is_err());
    }

    #[test]
    fn parse_dml() {
        match parse("create employee (salary := 100, name := 'Bob')").unwrap() {
            Stmt::Create { class, init } => {
                assert_eq!(class, ClassId::from("employee"));
                assert_eq!(init.len(), 2);
                assert_eq!(init[0].1, Literal::Int(100));
            }
            _ => unreachable!(),
        }
        match parse("set #3.salary := 150").unwrap() {
            Stmt::Set { oid, attr, value } => {
                assert_eq!(oid, 3);
                assert_eq!(attr, "salary".into());
                assert_eq!(value, Literal::Int(150));
            }
            _ => unreachable!(),
        }
        match parse("migrate #3 to manager (officialcar := 'Alfa')").unwrap() {
            Stmt::Migrate { oid, to, init } => {
                assert_eq!(oid, 3);
                assert_eq!(to, ClassId::from("manager"));
                assert_eq!(init.len(), 1);
            }
            _ => unreachable!(),
        }
        assert!(matches!(parse("terminate #5").unwrap(), Stmt::Terminate { oid: 5 }));
        assert!(matches!(parse("tick").unwrap(), Stmt::Tick(1)));
        assert!(matches!(parse("tick 10").unwrap(), Stmt::Tick(10)));
        assert!(matches!(parse("advance to 99").unwrap(), Stmt::AdvanceTo(99)));
        match parse("set class attribute project.average-participants := 20").unwrap() {
            Stmt::SetCAttr { class, attr, value } => {
                assert_eq!(class, ClassId::from("project"));
                assert_eq!(attr, "average-participants".into());
                assert_eq!(value, Literal::Int(20));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_select_variants() {
        match parse("select p, p.salary from employee p where p.salary >= 100").unwrap() {
            Stmt::Select(s) => {
                assert_eq!(s.projections, vec![
                    ("p".to_owned(), Projection::Var),
                    ("p".to_owned(), Projection::Attr("salary".into()))
                ]);
                assert_eq!(s.vars, vec![(ClassId::from("employee"), "p".to_owned())]);
                assert_eq!(s.time, TimeSpec::Now);
                assert!(matches!(s.filter, Some(Expr::Cmp(CmpOp::Ge, _, _))));
            }
            _ => unreachable!(),
        }
        match parse("select snapshot of p from employee p as of 42").unwrap() {
            Stmt::Select(s) => {
                assert_eq!(s.projections, vec![("p".to_owned(), Projection::SnapshotOf)]);
                assert_eq!(s.time, TimeSpec::AsOf(42));
            }
            _ => unreachable!(),
        }
        match parse("select history of p.salary, class of p, lifespan of p from employee p during [10, 50]").unwrap() {
            Stmt::Select(s) => {
                assert_eq!(s.projections.len(), 3);
                assert_eq!(s.time, TimeSpec::During(10, 50));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_expressions() {
        let q = "select p from employee p where \
                 not (p.salary at 10 = 100) and defined(p.boss) \
                 or sometime(p.salary > 50) and always(p.salary <> null) \
                 and p in manager";
        match parse(q).unwrap() {
            Stmt::Select(s) => {
                let f = s.filter.unwrap();
                // or at the top.
                assert!(matches!(f, Expr::Or(_, _)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_literals() {
        match parse("create c (xs := {1, 2, 2}, ys := [1.5, 'a'], z := null, b := true)").unwrap()
        {
            Stmt::Create { init, .. } => {
                assert_eq!(init[0].1, Literal::Set(vec![
                    Literal::Int(1),
                    Literal::Int(2),
                    Literal::Int(2)
                ]));
                assert_eq!(
                    init[1].1,
                    Literal::List(vec![Literal::Real(1.5), Literal::Str("a".into())])
                );
                assert_eq!(init[2].1, Literal::Null);
                assert_eq!(init[3].1, Literal::Bool(true));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_script_splits_statements() {
        let stmts = parse_script(
            "define class c (x: integer); tick 5; create c (x := 1);; select p from c p;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 4);
    }

    #[test]
    fn parse_errors_are_informative() {
        let e = parse("select p from").unwrap_err();
        assert!(e.to_string().contains("identifier"));
        let e = parse("bogus stuff").unwrap_err();
        assert!(e.to_string().contains("statement"));
        let e = parse("select q.x from employee p").unwrap_err();
        assert!(e.to_string().contains("unknown variable"));
        assert!(parse("create c (x := )").is_err());
        assert!(parse("check nothing").is_err());
        // Unknown variable inside WHERE.
        assert!(parse("select p from employee p where q.x = 1").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // 10k parens: without the depth guard this overflows the stack.
        let q = format!(
            "select p from c p where {}p.x = 1{}",
            "(".repeat(10_000),
            ")".repeat(10_000)
        );
        let e = parse(&q).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TooDeep);
        assert!(e.to_string().contains("nests deeper"));

        // The same for a `not` chain (self-recursive rule)…
        let q = format!("select p from c p where {} p.x = 1", "not ".repeat(10_000));
        assert_eq!(parse(&q).unwrap_err().kind, ParseErrorKind::TooDeep);

        // …nested collection literals…
        let q = format!("create c (x := {}1{})", "[".repeat(10_000), "]".repeat(10_000));
        assert_eq!(parse(&q).unwrap_err().kind, ParseErrorKind::TooDeep);

        // …and nested type expressions.
        let q = format!(
            "define class c (x: {}integer{})",
            "set-of(".repeat(10_000),
            ")".repeat(10_000)
        );
        assert_eq!(parse(&q).unwrap_err().kind, ParseErrorKind::TooDeep);
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let q = format!(
            "select p from c p where {}p.x = 1{}",
            "(".repeat(MAX_PARSE_DEPTH - 8),
            ")".repeat(MAX_PARSE_DEPTH - 8)
        );
        assert!(matches!(parse(&q).unwrap(), Stmt::Select(_)));
        // Ordinary errors keep the Syntax kind.
        assert_eq!(parse("select p from").unwrap_err().kind, ParseErrorKind::Syntax);
    }

    #[test]
    fn misc_statements() {
        assert!(matches!(parse("show class employee").unwrap(), Stmt::ShowClass(_)));
        assert!(matches!(parse("check consistency").unwrap(), Stmt::CheckConsistency));
        assert!(matches!(parse("check invariants").unwrap(), Stmt::CheckInvariants));
        assert!(matches!(parse("drop class c").unwrap(), Stmt::DropClass(_)));
        assert!(matches!(
            parse("create c").unwrap(),
            Stmt::Create { init, .. } if init.is_empty()
        ));
        assert!(matches!(parse("scrub now").unwrap(), Stmt::ScrubNow));
        assert!(matches!(parse("SCRUB STATUS").unwrap(), Stmt::ScrubStatus));
        assert!(parse("scrub").is_err());
        assert!(parse("scrub everything").is_err());
    }
}
