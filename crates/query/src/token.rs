//! The TCQL lexer.

use std::fmt;

/// A lexical token with its source offset.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source (for diagnostics).
    pub offset: usize,
}

/// Token kinds. Keywords are recognized case-insensitively by the parser
/// from `Ident` tokens, so class/attribute names may shadow nothing.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (normalized to the original spelling).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal (single quotes, `''` escapes a quote).
    Str(String),
    /// Oid literal `#n`.
    OidLit(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Real(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::OidLit(v) => write!(f, "#{v}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Assign => write!(f, ":="),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Neq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexical error.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a TCQL source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, offset: start });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, offset: start });
                i += 1;
            }
            '[' => {
                out.push(Token { kind: TokenKind::LBracket, offset: start });
                i += 1;
            }
            ']' => {
                out.push(Token { kind: TokenKind::RBracket, offset: start });
                i += 1;
            }
            '{' => {
                out.push(Token { kind: TokenKind::LBrace, offset: start });
                i += 1;
            }
            '}' => {
                out.push(Token { kind: TokenKind::RBrace, offset: start });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, offset: start });
                i += 1;
            }
            ';' => {
                out.push(Token { kind: TokenKind::Semicolon, offset: start });
                i += 1;
            }
            '.' => {
                out.push(Token { kind: TokenKind::Dot, offset: start });
                i += 1;
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Assign, offset: start });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Colon, offset: start });
                    i += 1;
                }
            }
            '=' => {
                out.push(Token { kind: TokenKind::Eq, offset: start });
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Le, offset: start });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token { kind: TokenKind::Neq, offset: start });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Lt, offset: start });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token { kind: TokenKind::Ge, offset: start });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Gt, offset: start });
                    i += 1;
                }
            }
            '#' => {
                i += 1;
                let ds = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if ds == i {
                    return Err(LexError {
                        offset: start,
                        message: "expected digits after `#`".into(),
                    });
                }
                let v: u64 = src[ds..i].parse().map_err(|_| LexError {
                    offset: start,
                    message: "oid literal out of range".into(),
                })?;
                out.push(Token { kind: TokenKind::OidLit(v), offset: start });
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Advance over a full UTF-8 scalar.
                        let ch = src[i..].chars().next().unwrap();
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            '-' | '0'..='9' => {
                let neg = c == '-';
                if neg {
                    i += 1;
                    if i >= bytes.len() || !bytes[i].is_ascii_digit() {
                        return Err(LexError {
                            offset: start,
                            message: "expected digits after `-`".into(),
                        });
                    }
                }
                let ds = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_real = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_real = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[ds..i];
                if is_real {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        offset: start,
                        message: "bad real literal".into(),
                    })?;
                    out.push(Token {
                        kind: TokenKind::Real(if neg { -v } else { v }),
                        offset: start,
                    });
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        offset: start,
                        message: "integer literal out of range".into(),
                    })?;
                    out.push(Token {
                        kind: TokenKind::Int(if neg { -v } else { v }),
                        offset: start,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                // `c` is the raw *byte* at `i`; for multibyte UTF-8 the
                // real scalar may be a non-identifier character whose
                // lead byte happens to look alphabetic in Latin-1 (e.g.
                // `╬` leads with 0xE2 = 'â'). Re-check the real char so
                // the scan below always advances.
                let real = src[i..].chars().next().expect("i at char boundary");
                if !(real.is_alphabetic() || real == '_') {
                    return Err(LexError {
                        offset: start,
                        message: format!("unexpected character `{real}`"),
                    });
                }
                let mut j = i;
                while j < bytes.len() {
                    let ch = src[j..].chars().next().unwrap();
                    // `-` is an identifier character when followed by a
                    // letter (Chimera names like `set-of`,
                    // `average-participants`).
                    if ch.is_alphanumeric() || ch == '_' {
                        j += ch.len_utf8();
                    } else if ch == '-'
                        && src[j + 1..].chars().next().is_some_and(|n| n.is_alphabetic())
                    {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[i..j].to_owned()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(LexError {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("( ) [ ] { } , ; : . := = <> < <= > >="),
            vec![
                LParen, RParen, LBracket, RBracket, LBrace, RBrace, Comma, Semicolon, Colon,
                Dot, Assign, Eq, Neq, Lt, Le, Gt, Ge, Eof
            ]
        );
    }

    #[test]
    fn literals() {
        use TokenKind::*;
        assert_eq!(
            kinds("42 -7 3.5 -0.25 'it''s' #9"),
            vec![
                Int(42),
                Int(-7),
                Real(3.5),
                Real(-0.25),
                Str("it's".into()),
                OidLit(9),
                Eof
            ]
        );
    }

    #[test]
    fn identifiers_with_hyphens() {
        use TokenKind::*;
        assert_eq!(
            kinds("set-of average-participants x"),
            vec![
                Ident("set-of".into()),
                Ident("average-participants".into()),
                Ident("x".into()),
                Eof
            ]
        );
        // A bare `-` not followed by a digit is an error (TCQL has no
        // arithmetic).
        assert!(lex("x - y").is_err());
    }

    #[test]
    fn comments_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("select -- a comment\n x"),
            vec![Ident("select".into()), Ident("x".into()), Eof]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("'open").is_err());
        assert!(lex("#").is_err());
        assert!(lex("$").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn multibyte_non_identifier_chars_error_not_hang() {
        // `╬` (U+256C): lead byte 0xE2 reads as the Latin-1 letter 'â';
        // the lexer must reject the real char, not loop forever.
        assert!(lex("╬").is_err());
        assert!(lex("䧗謎╬䄆").is_err());
        // Real multibyte letters lex as identifiers.
        let ts = lex("müller 結果").unwrap();
        assert_eq!(ts.len(), 3); // two idents + EOF
    }

    #[test]
    fn offsets_recorded() {
        let ts = lex("ab cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 3);
    }
}
