//! The query resource governor: execution budgets and cooperative
//! cancellation (`DESIGN.md` §12).
//!
//! The paper's temporal algebra admits queries whose cost is unbounded —
//! a `DURING` existential recheck over a cross product examines every
//! binding at every history event point, and the planner only shrinks
//! *well-shaped* queries. An [`ExecBudget`] caps the damage: it bounds
//! examined bindings, materialized rows/bytes and total logical cost, and
//! carries a shared [`CancelToken`] so a client (or an operator) can stop
//! a running query cooperatively. The executor meters its work against
//! the budget and aborts with a typed error
//! ([`EvalError::Budget`](crate::EvalError) /
//! [`EvalError::Cancelled`](crate::EvalError)) carrying a [`Progress`]
//! snapshot of how far it got.
//!
//! Accounting is deliberately *logical* (work units, not wall-clock):
//! runs are deterministic and tests need no timers. One cost unit is one
//! elementary evaluator step — a candidate binding examined, a prefilter
//! candidate checked, a hash-table build entry, a `DURING` event point
//! visited, or a row materialized. Partition workers batch their counts
//! locally and reconcile against the shared meter every
//! [`CHECK_STRIDE`] units, so a budget can be overrun by at most
//! `partitions × CHECK_STRIDE` units and the fast path stays free of
//! shared-cache traffic.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tchimera_core::Value;

use crate::eval::EvalError;

/// How many locally-accumulated cost units a worker may hold before it
/// must reconcile with the shared meter (and notice cancellation).
pub const CHECK_STRIDE: u64 = 1024;

/// A shared flag for cooperative cancellation. Cloning shares the flag;
/// cancelling any clone stops every query carrying one within
/// [`CHECK_STRIDE`] work units.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Clear the flag so the token can govern another query.
    pub fn reset(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// The budgeted resource that ran out (for `BudgetExceeded` errors).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resource {
    /// Candidate bindings examined by the join pipeline.
    Bindings,
    /// Result rows materialized.
    Rows,
    /// Approximate bytes of materialized result values.
    Bytes,
    /// Total logical cost units (the query's deadline).
    Cost,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Bindings => "bindings",
            Resource::Rows => "rows",
            Resource::Bytes => "bytes",
            Resource::Cost => "cost",
        })
    }
}

/// A snapshot of how much work a query had done when it was stopped —
/// attached to budget/cancellation errors for EXPLAIN-style diagnosis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Progress {
    /// Candidate bindings examined.
    pub bindings: u64,
    /// Result rows materialized.
    pub rows: u64,
    /// Approximate result bytes materialized.
    pub bytes: u64,
    /// Total logical cost units spent.
    pub cost: u64,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bindings, {} rows, {} bytes, {} cost units",
            self.bindings, self.rows, self.bytes, self.cost
        )
    }
}

/// Resource limits for one query execution, plus the cancellation token.
///
/// Limits are in logical units (see the module docs); `u64::MAX` means
/// "unlimited". The [`Default`] budget is sized so every reasonable query
/// completes untouched while a pathological one (an unfiltered multi-way
/// cross product, a full-history `DURING` recheck) is stopped long before
/// it can pin a core or exhaust memory.
#[derive(Clone, Debug)]
pub struct ExecBudget {
    /// Max candidate bindings the join pipeline may examine.
    pub max_bindings: u64,
    /// Max result rows that may be materialized.
    pub max_rows: u64,
    /// Max approximate result bytes that may be materialized.
    pub max_bytes: u64,
    /// Max total logical cost units — the query's logical deadline.
    pub max_cost: u64,
    /// Cooperative cancellation flag, checked at every reconciliation.
    pub cancel: CancelToken,
}

impl Default for ExecBudget {
    fn default() -> ExecBudget {
        ExecBudget {
            max_bindings: 1_000_000,
            max_rows: 100_000,
            max_bytes: 64 << 20,
            max_cost: 4_000_000,
            cancel: CancelToken::new(),
        }
    }
}

impl ExecBudget {
    /// A budget that never trips (but still honors its [`CancelToken`]).
    #[must_use]
    pub fn unlimited() -> ExecBudget {
        ExecBudget {
            max_bindings: u64::MAX,
            max_rows: u64::MAX,
            max_bytes: u64::MAX,
            max_cost: u64::MAX,
            cancel: CancelToken::new(),
        }
    }

    /// Replace the cancellation token (builder-style).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> ExecBudget {
        self.cancel = cancel;
        self
    }
}

/// The shared side of budget accounting: totals across all partition
/// workers of one query execution. Workers reconcile their local
/// [`Charge`] batches here and learn about exhaustion/cancellation.
#[derive(Debug)]
pub(crate) struct Meter {
    budget: ExecBudget,
    bindings: AtomicU64,
    rows: AtomicU64,
    bytes: AtomicU64,
    cost: AtomicU64,
}

impl Meter {
    pub(crate) fn new(budget: &ExecBudget) -> Meter {
        Meter {
            budget: budget.clone(),
            bindings: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            cost: AtomicU64::new(0),
        }
    }

    /// Total work reconciled so far (in-flight local batches excluded).
    pub(crate) fn progress(&self) -> Progress {
        Progress {
            bindings: self.bindings.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            cost: self.cost.load(Ordering::Relaxed),
        }
    }

    /// Fold a local batch into the totals, then verify every limit and
    /// the cancellation flag. Saturating adds: a pathological query can
    /// not overflow the meters.
    fn reconcile(&self, delta: Progress) -> Result<(), EvalError> {
        let add = |a: &AtomicU64, d: u64| {
            if d > 0 {
                a.fetch_add(d, Ordering::Relaxed);
            }
        };
        add(&self.bindings, delta.bindings);
        add(&self.rows, delta.rows);
        add(&self.bytes, delta.bytes);
        add(&self.cost, delta.cost);
        let progress = self.progress();
        if self.budget.cancel.is_cancelled() {
            return Err(EvalError::Cancelled { progress });
        }
        let b = &self.budget;
        let over = [
            (Resource::Bindings, progress.bindings, b.max_bindings),
            (Resource::Rows, progress.rows, b.max_rows),
            (Resource::Bytes, progress.bytes, b.max_bytes),
            (Resource::Cost, progress.cost, b.max_cost),
        ]
        .into_iter()
        .find(|&(_, spent, limit)| spent > limit);
        match over {
            Some((resource, spent, limit)) => Err(EvalError::Budget {
                resource,
                spent,
                limit,
                progress,
            }),
            None => Ok(()),
        }
    }
}

/// A worker's local, batching view of the budget. All the hot-path
/// methods are plain integer arithmetic on local fields; the shared
/// [`Meter`] is touched only every [`CHECK_STRIDE`] cost units (or at
/// [`Charge::flush`]). With no meter attached every method is a no-op,
/// so unbudgeted execution pays a single well-predicted branch.
#[derive(Debug)]
pub(crate) struct Charge<'m> {
    meter: Option<&'m Meter>,
    local: Progress,
    pending: u64,
}

impl<'m> Charge<'m> {
    pub(crate) fn new(meter: Option<&'m Meter>) -> Charge<'m> {
        Charge { meter, local: Progress::default(), pending: 0 }
    }

    /// Charge `n` examined candidate bindings (each is one cost unit).
    #[inline]
    pub(crate) fn bindings(&mut self, n: u64) -> Result<(), EvalError> {
        if self.meter.is_none() {
            return Ok(());
        }
        self.local.bindings += n;
        self.local.cost += n;
        self.bump(n)
    }

    /// Charge `n` generic cost units (prefilter candidates, hash-build
    /// entries, `DURING` event points).
    #[inline]
    pub(crate) fn cost(&mut self, n: u64) -> Result<(), EvalError> {
        if self.meter.is_none() {
            return Ok(());
        }
        self.local.cost += n;
        self.bump(n)
    }

    /// Charge one materialized row of approximately `bytes` bytes.
    #[inline]
    pub(crate) fn row(&mut self, bytes: u64) -> Result<(), EvalError> {
        if self.meter.is_none() {
            return Ok(());
        }
        self.local.rows += 1;
        self.local.bytes += bytes;
        self.local.cost += 1;
        // Byte-heavy rows reconcile proportionally sooner, bounding the
        // memory a worker can commit between checks.
        self.bump(1 + bytes / 64)
    }

    #[inline]
    fn bump(&mut self, n: u64) -> Result<(), EvalError> {
        self.pending += n;
        if self.pending >= CHECK_STRIDE {
            return self.flush();
        }
        Ok(())
    }

    /// Reconcile the local batch with the shared meter now.
    pub(crate) fn flush(&mut self) -> Result<(), EvalError> {
        let Some(meter) = self.meter else { return Ok(()) };
        let delta = std::mem::take(&mut self.local);
        self.pending = 0;
        meter.reconcile(delta)
    }
}

/// Approximate heap footprint of a produced row, for byte budgeting.
/// Deliberately cheap and coarse: container headers plus payload.
pub(crate) fn approx_row_bytes(row: &[Value]) -> u64 {
    32 + row.iter().map(approx_value_bytes).sum::<u64>()
}

fn approx_value_bytes(v: &Value) -> u64 {
    match v {
        Value::Null
        | Value::Int(_)
        | Value::Real(_)
        | Value::Bool(_)
        | Value::Char(_)
        | Value::Time(_)
        | Value::Oid(_) => 16,
        Value::Str(s) => 24 + s.len() as u64,
        Value::Set(vs) | Value::List(vs) => {
            24 + vs.iter().map(approx_value_bytes).sum::<u64>()
        }
        Value::Record(fs) => {
            24 + fs
                .iter()
                .map(|(n, v)| 16 + n.as_str().len() as u64 + approx_value_bytes(v))
                .sum::<u64>()
        }
        Value::Temporal(h) => {
            24 + h
                .entries()
                .iter()
                .map(|e| 24 + approx_value_bytes(&e.value))
                .sum::<u64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_and_resettable() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        clone.reset();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn meter_trips_the_tightest_limit_first() {
        let budget = ExecBudget {
            max_bindings: 10,
            ..ExecBudget::unlimited()
        };
        let meter = Meter::new(&budget);
        let mut charge = Charge::new(Some(&meter));
        for _ in 0..10 {
            charge.bindings(1).unwrap();
        }
        charge.flush().unwrap();
        charge.bindings(1).unwrap();
        match charge.flush() {
            Err(EvalError::Budget { resource, spent, limit, progress }) => {
                assert_eq!(resource, Resource::Bindings);
                assert_eq!(spent, 11);
                assert_eq!(limit, 10);
                assert_eq!(progress.cost, 11);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn batching_defers_reconciliation_until_the_stride() {
        let budget = ExecBudget {
            max_cost: 1,
            ..ExecBudget::unlimited()
        };
        let meter = Meter::new(&budget);
        let mut charge = Charge::new(Some(&meter));
        // Under the stride nothing reconciles, so nothing trips yet…
        for _ in 0..(CHECK_STRIDE - 1) {
            charge.cost(1).unwrap();
        }
        assert_eq!(meter.progress().cost, 0);
        // …the stride boundary reconciles and reports the overrun.
        assert!(matches!(
            charge.cost(1),
            Err(EvalError::Budget { resource: Resource::Cost, .. })
        ));
    }

    #[test]
    fn cancellation_surfaces_with_progress() {
        let budget = ExecBudget::unlimited();
        let meter = Meter::new(&budget);
        let mut charge = Charge::new(Some(&meter));
        charge.bindings(5).unwrap();
        budget.cancel.cancel();
        match charge.flush() {
            Err(EvalError::Cancelled { progress }) => {
                assert_eq!(progress.bindings, 5)
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn unmetered_charges_are_free_and_infallible() {
        let mut charge = Charge::new(None);
        for _ in 0..(3 * CHECK_STRIDE) {
            charge.bindings(1).unwrap();
            charge.row(1 << 20).unwrap();
        }
        charge.flush().unwrap();
    }

    #[test]
    fn row_bytes_scale_with_payload() {
        let small = approx_row_bytes(&[Value::Int(1)]);
        let big = approx_row_bytes(&[Value::Str("x".repeat(4096))]);
        assert!(big > small + 4000);
    }
}
