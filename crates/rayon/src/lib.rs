//! Offline drop-in subset of the `rayon` parallel-iterator API.
//!
//! The build environment has no cargo registry, so this crate implements
//! the slice of rayon the workspace uses — `par_iter().map(..).collect()`,
//! `for_each`, and [`join`] — on top of `std::thread::scope`. Work is
//! distributed dynamically: worker threads pull fixed-size index chunks
//! off a shared atomic counter, which load-balances uneven per-item costs
//! (e.g. objects with long histories next to freshly created ones).
//!
//! Results are always returned in input order, so a parallel
//! `map/collect` is observationally identical to its serial counterpart.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Number of worker threads used for parallel execution.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// The core engine: map `f` over `items` on all available cores,
/// preserving input order in the output.
fn par_map_slice<'a, T, U, F>(items: &'a [T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 || n < 2 {
        return items.iter().map(f).collect();
    }
    // Small chunks + an atomic cursor give dynamic load balancing without
    // unsafe output slots: each worker returns (start, results) pairs that
    // are reassembled in order afterwards.
    let chunk = (n / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let out: Vec<U> = items[start..end].iter().map(f).collect();
                parts.lock().expect("poisoned").push((start, out));
            });
        }
    });
    let mut parts = parts.into_inner().expect("poisoned");
    parts.sort_unstable_by_key(|p| p.0);
    let mut out = Vec::with_capacity(n);
    for (_, mut p) in parts {
        out.append(&mut p);
    }
    out
}

/// Conversion of `&self` collections into a parallel iterator
/// (rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// A parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a slice of items.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every item through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Run `f` on every item in parallel (no results).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map_slice(self.items, &f);
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Execute the parallel map and collect the results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_slice(self.items, &self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let v: Vec<u64> = Vec::new();
        let out: Vec<u64> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let out: Vec<u64> = [7u64].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn for_each_runs_all() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        let v: Vec<u64> = (1..=1000).collect();
        v.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_owned() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
