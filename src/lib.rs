//! # tchimera — umbrella crate
//!
//! One-stop entry point for the T_Chimera system, the executable
//! implementation of *A Formal Temporal Object-Oriented Data Model*
//! (Bertino, Ferrari, Guerrini — EDBT 1996):
//!
//! * [`core`] — the data model itself: types, values, typing rules,
//!   classes, objects, consistency, equality, inheritance, invariants.
//! * [`temporal`] — the discrete time-domain substrate.
//! * [`storage`] — the event-sourced persistence engine.
//! * [`query`] — TCQL, the typed temporal query/DDL/DML language.
//!
//! The most common items are re-exported at the crate root:
//!
//! ```
//! use tchimera::{attrs, ClassDef, ClassId, Database, Instant, Type, Value};
//!
//! let mut db = Database::new();
//! db.define_class(
//!     ClassDef::new("employee").attr("salary", Type::temporal(Type::INTEGER)),
//! ).unwrap();
//! let i = db.create_object(
//!     &ClassId::from("employee"),
//!     attrs([("salary", Value::Int(1000))]),
//! ).unwrap();
//! db.tick_by(10);
//! db.set_attr(i, &"salary".into(), Value::Int(1200)).unwrap();
//! assert_eq!(db.attr_at(i, &"salary".into(), Instant(5)).unwrap(), Value::Int(1000));
//! ```

#![warn(missing_docs)]

/// The T_Chimera data model (re-export of `tchimera-core`).
pub use tchimera_core as core;
/// The time-domain substrate (re-export of `tchimera-temporal`).
pub use tchimera_temporal as temporal;
/// The persistence engine (re-export of `tchimera-storage`).
pub use tchimera_storage as storage;
/// TCQL (re-export of `tchimera-query`).
pub use tchimera_query as query;
/// Metrics and structured tracing (re-export of `tchimera-obs`).
pub use tchimera_obs as obs;

pub use tchimera_core::{
    attrs, check_oid_uniqueness, AttrDecl, AttrKind, AttrName, Attrs, BasicType, Capabilities,
    Class, ClassDef, ClassId, ClassKind, ConsistencyError, ConsistencyReport, Constraint,
    ConstraintViolation, Database, Equality, HistoryError, Instant, Interval, IntervalSet,
    InvariantId, InvariantViolation, Lifespan, MethodName, MethodSig, ModelError, Object, Oid,
    Quantifier, Schema, Symbol, TemporalEntry, TemporalValue, TimeBound, Type, Value,
    CAPABILITIES,
};
pub use tchimera_query::{Interpreter, Outcome, QueryError, QueryResult};
pub use tchimera_storage::{
    EngineConfig, EngineError, PersistentDatabase, TemporalIndex, Transaction,
};

/// The README's code examples, compile-checked as doctests.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

/// The TCQL reference's code examples, compile-checked as doctests.
#[doc = include_str!("../docs/TCQL.md")]
#[cfg(doctest)]
pub struct TcqlDoctests;

/// The architecture tour's code examples, compile-checked as doctests.
#[doc = include_str!("../docs/ARCHITECTURE.md")]
#[cfg(doctest)]
pub struct ArchitectureDoctests;
