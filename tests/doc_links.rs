//! Checks that every relative Markdown link in the repo's documentation
//! resolves to a real file, so doc reorganizations cannot leave dangling
//! references. External (`http`/`https`) links and pure `#anchor` links
//! are out of scope; a `path#anchor` link is checked for the path part
//! only.

use std::fs;
use std::path::{Path, PathBuf};

/// Documents whose relative links must resolve. Paths are relative to
/// the workspace root (the umbrella crate's manifest directory).
const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/TCQL.md",
];

/// Extracts inline Markdown link targets `](target)` from one line.
/// Good enough for the repo's hand-written docs: targets never contain
/// parentheses or spaces.
fn link_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = line[i + 2..].find(')') {
                out.push(line[i + 2..i + 2 + end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn relative_doc_links_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();

    for doc in DOCS {
        let path = root.join(doc);
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("listed doc {doc} must exist: {e}"));
        let base = path.parent().unwrap_or(Path::new("."));

        let mut in_code_fence = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_code_fence = !in_code_fence;
                continue;
            }
            if in_code_fence {
                continue;
            }
            for target in link_targets(line) {
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with('#')
                    || target.starts_with("mailto:")
                    || target.is_empty()
                {
                    continue;
                }
                let file_part = target.split('#').next().unwrap();
                if !base.join(file_part).exists() {
                    broken.push(format!("{doc}:{}: {target}", lineno + 1));
                }
            }
        }
    }

    assert!(
        broken.is_empty(),
        "broken relative doc links:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn doc_list_is_current() {
    // If someone adds a new top-level guide under docs/, it must join
    // the checked set above.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for entry in fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        if name.ends_with(".md") {
            let rel = format!("docs/{name}");
            assert!(
                DOCS.contains(&rel.as_str()),
                "{rel} is not in the doc_links checked set — add it to DOCS"
            );
        }
    }
}
