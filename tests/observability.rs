//! Cross-crate observability contract tests.
//!
//! * The recovery ladder emits **exactly one** `storage.recovery.rung`
//!   event per `PersistentDatabase` open, naming the rung taken.
//! * Every metric name documented in `DESIGN.md` §9 exists in a
//!   [`MetricsSnapshot`](tchimera::obs::MetricsSnapshot) once the three
//!   layers have registered their vocabularies — the docs and the code
//!   cannot drift apart.
//! * The snapshot spans all three layers with a healthy margin.

use std::path::Path;
use std::sync::{Arc, Mutex};

use tchimera::obs::{self, EventKind};
use tchimera::storage::{PersistentDatabase, SimFs, TearMode, Vfs};
use tchimera::{attrs, ClassDef, ClassId, Database, Instant, Type, Value};

/// The global subscriber is process-wide state: tests that install one
/// serialize on this lock (and tolerate a poisoned lock — the state is
/// reset at the start of each test).
static SUBSCRIBER_LOCK: Mutex<()> = Mutex::new(());

fn touch_all() {
    tchimera_core::touch_metrics();
    tchimera_storage::touch_metrics();
    tchimera_query::touch_metrics();
}

#[test]
fn recovery_ladder_emits_exactly_one_rung_event_per_open() {
    let _guard = SUBSCRIBER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let fs = SimFs::new();
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
    let path = Path::new("rung.db");

    let rungs_in = |events: &[obs::TraceEvent]| -> Vec<String> {
        events
            .iter()
            .filter(|e| e.kind == EventKind::Instant && e.name == "storage.recovery.rung")
            .map(|e| e.fields.clone())
            .collect()
    };

    // Open 1: fresh database — full replay of an empty log.
    obs::install_ring_buffer(1024);
    {
        let mut pdb = PersistentDatabase::open_with(Arc::clone(&vfs), path).unwrap();
        pdb.define_class(
            ClassDef::new("employee").attr("salary", Type::temporal(Type::INTEGER)),
        )
        .unwrap();
        pdb.advance_to(Instant(10)).unwrap();
        pdb.create_object(&ClassId::from("employee"), attrs([("salary", Value::Int(7))]))
            .unwrap();
        pdb.sync().unwrap();
        let rungs = rungs_in(&obs::take_trace());
        assert_eq!(rungs, vec![r#"rung="full-replay""#], "first open");

        // Open 2 happens below with a snapshot present.
        pdb.checkpoint().unwrap();
    }

    // Open 2: crash, then recover through the snapshot rung.
    fs.crash(TearMode::DropAll);
    obs::install_ring_buffer(1024);
    let reopened = PersistentDatabase::open_with(Arc::clone(&vfs), path).unwrap();
    let rungs = rungs_in(&obs::take_trace());
    assert_eq!(rungs, vec![r#"rung="snapshot+suffix""#], "reopen after checkpoint");
    assert_eq!(reopened.db().object_count(), 1);
    drop(reopened);

    // Open 3: destroy the snapshot after compaction — the ladder must
    // refuse, and that refusal is still exactly one rung event.
    let snap = tchimera::storage::snapshot_path(path);
    fs.corrupt_byte(&snap, 0, 0xff).unwrap();
    obs::install_ring_buffer(1024);
    let err = PersistentDatabase::open_with(Arc::clone(&vfs), path);
    assert!(err.is_err(), "compacted log without snapshot must refuse");
    let rungs = rungs_in(&obs::take_trace());
    assert_eq!(rungs, vec![r#"rung="refused""#], "refused open");

    let _ = obs::clear_subscriber();
}

#[test]
fn design_doc_section_9_names_round_trip_into_the_snapshot() {
    touch_all();
    let snap = obs::snapshot();

    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(manifest.join("DESIGN.md")).unwrap();
    let section9 = design
        .split("\n## 9.")
        .nth(1)
        .expect("DESIGN.md has a §9 observability section");
    let section9 = section9.split("\n## ").next().unwrap();

    // Table rows look like `| `core.extent.checkpoints` | counter | … |`;
    // collect every backticked dotted name in the section.
    let mut documented = Vec::new();
    for line in section9.lines().filter(|l| l.trim_start().starts_with('|')) {
        let mut rest = line;
        while let Some(start) = rest.find('`') {
            let tail = &rest[start + 1..];
            let Some(end) = tail.find('`') else { break };
            let name = &tail[..end];
            if name.contains('.') && !name.contains(' ') && !name.contains('(') {
                documented.push(name.to_owned());
            }
            rest = &tail[end + 1..];
        }
    }
    assert!(
        documented.len() >= 30,
        "expected the §9 contract table to document the full vocabulary, found {}",
        documented.len()
    );
    for name in &documented {
        assert!(
            snap.contains(name),
            "DESIGN.md §9 documents `{name}` but the snapshot does not contain it"
        );
    }

    // And the converse: everything registered under the product prefixes
    // is documented (scratch `test.*` names from other tests are exempt).
    for name in snap.names() {
        let product =
            ["core.", "storage.", "query.", "repl."].iter().any(|p| name.starts_with(p));
        if product {
            assert!(
                documented.iter().any(|d| d == name),
                "`{name}` is emitted but not documented in DESIGN.md §9"
            );
        }
    }
}

#[test]
fn snapshot_spans_all_three_layers_with_at_least_twelve_metrics() {
    // Exercise real code paths rather than just touching vocabularies:
    // a query, a consistency check, and a persistent open.
    let mut interp = tchimera::Interpreter::new();
    interp
        .run_script(
            "define class person (name: temporal(string));
             advance to 5;
             create person (name := 'Ada');
             select p from person p;",
        )
        .unwrap();
    assert!(interp.db().check_database().is_consistent());

    let vfs: Arc<dyn Vfs> = Arc::new(SimFs::new());
    let pdb = PersistentDatabase::open_with(vfs, Path::new("span.db")).unwrap();

    let snap = pdb.db().metrics();
    let count = |prefix: &str| snap.names().iter().filter(|n| n.starts_with(prefix)).count();
    assert!(count("core.") >= 4, "core metrics: {}", count("core."));
    assert!(count("storage.") >= 4, "storage metrics: {}", count("storage."));
    assert!(count("query.") >= 4, "query metrics: {}", count("query."));
    assert!(
        count("core.") + count("storage.") + count("query.") >= 12,
        "snapshot must cover at least 12 product metrics"
    );

    // The snapshot serialises; the example and docs rely on this shape.
    let json = snap.to_json();
    assert!(json.trim_start().starts_with('{'));
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"histograms\""));
}

#[test]
fn metrics_work_without_a_subscriber_and_the_trace_stays_empty() {
    let _guard = SUBSCRIBER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = obs::clear_subscriber();
    let db = Database::new();
    let snap = db.metrics();
    assert!(snap.contains("core.check_database"));
    assert!(db.take_trace().is_empty());
}
