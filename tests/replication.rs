//! Cross-crate replication: a log-shipping follower serving governed,
//! staleness-bounded TCQL reads through a read-only session.
//!
//! The storage layer guarantees the follower's database is a
//! committed-boundary copy of the primary (`crates/storage/tests/
//! repl_chaos.rs` proves convergence under faults); this test wires that
//! copy to the query layer: `Replica::read_view` bounds how stale a
//! served view may be, and `ReplicaSession` refuses every mutating
//! statement so reads can never fork the follower's state.

use std::path::PathBuf;
use std::sync::Arc;

use tchimera_core::{ClassDef, Instant, Type, Value};
use tchimera_query::{Outcome, QueryError, ReplicaSession};
use tchimera_storage::repl::{Primary, Replica, ReplicaError, SimNetConfig, SimTransport};
use tchimera_storage::{PersistentDatabase, SimFs, Vfs};

fn open(name: &str) -> PersistentDatabase {
    let vfs: Arc<dyn Vfs> = Arc::new(SimFs::new());
    PersistentDatabase::open_with(vfs, &PathBuf::from(name)).expect("open")
}

/// Pump both ends until the replica is fully caught up.
fn quiesce<T: tchimera_storage::repl::Transport>(p: &mut Primary<T>, r: &mut Replica<T>) {
    for _ in 0..100 {
        p.pump().unwrap();
        r.pump().unwrap();
        if r.lag() == 0 && r.applied() == p.db().op_count() as u64 {
            return;
        }
    }
    panic!("replica failed to catch up on a clean link");
}

#[test]
fn replica_serves_governed_reads_and_refuses_writes() {
    let (pt, rt) = SimTransport::pair(42, SimNetConfig::clean());
    let link = pt.clone();
    let mut primary = Primary::new(open("primary.log"), 1, pt);
    let mut replica = Replica::new(open("replica.log"), rt);

    // Seed a schema and some history on the primary.
    primary
        .db()
        .txn(|t| {
            t.define_class(
                ClassDef::new("employee").attr("salary", Type::temporal(Type::INTEGER)),
            )?;
            t.advance_to(Instant(1))?;
            Ok(())
        })
        .unwrap();
    for i in 0..4 {
        let salary = Value::Int(100 + i);
        primary
            .db()
            .txn(|t| {
                t.create_object(
                    &"employee".into(),
                    tchimera_core::attrs([("salary", salary.clone())]),
                )?;
                t.tick()?;
                Ok(())
            })
            .unwrap();
    }
    quiesce(&mut primary, &mut replica);

    // A fully caught-up replica serves queries at staleness bound 0,
    // and they agree with the primary's own view.
    let mut session = ReplicaSession::new();
    let view = replica.read_view(0).expect("lag 0 view");
    match session.run(view, "select e, e.salary from employee e where e.salary > 101") {
        Ok(Outcome::Table(t)) => assert_eq!(t.len(), 2),
        other => panic!("expected rows from the replica, got {other:?}"),
    }
    match session.run(view, "check consistency") {
        Ok(Outcome::Consistency(r)) => assert!(r.is_consistent()),
        other => panic!("expected consistency report, got {other:?}"),
    }

    // Every mutating statement is refused at the language level,
    // leaving the replica's digest untouched.
    let digest = replica.db_ref().state_digest();
    for src in ["tick 1", "set #0.salary := 1", "terminate #1", "drop class employee"] {
        let view = replica.read_view(0).unwrap();
        match session.run(view, src) {
            Err(QueryError::ReadOnly { .. }) => {}
            other => panic!("{src:?}: expected ReadOnly refusal, got {other:?}"),
        }
    }
    assert_eq!(replica.db_ref().state_digest(), digest);

    // The primary races ahead while the link is down: the staleness
    // bound starts refusing, an explicitly loose bound still serves.
    link.set_partitioned(true);
    for _ in 0..3 {
        primary.db().txn(|t| { t.tick()?; Ok(()) }).unwrap();
        primary.pump().unwrap();
    }
    link.set_partitioned(false);
    primary.pump().unwrap(); // heartbeat tells the replica how far behind it is
    replica.pump().unwrap();
    assert!(replica.lag() > 0);
    match replica.read_view(0) {
        Err(ReplicaError::TooStale { lag, max_lag }) => {
            assert!(lag > 0);
            assert_eq!(max_lag, 0);
        }
        Err(other) => panic!("unexpected refusal: {other}"),
        Ok(_) => panic!("stale view served despite a zero staleness bound"),
    }
    let loose = replica.read_view(100).expect("loose bound tolerates lag");
    assert!(matches!(
        session.run(loose, "select e from employee e"),
        Ok(Outcome::Table(_))
    ));

    // Catch back up: the strict bound serves again and both sides agree.
    quiesce(&mut primary, &mut replica);
    let view = replica.read_view(0).unwrap();
    match session.run(view, "select e from employee e") {
        Ok(Outcome::Table(t)) => assert_eq!(t.len(), 4),
        other => panic!("expected rows, got {other:?}"),
    }
    assert_eq!(
        replica.db_ref().state_digest(),
        primary.db_ref().state_digest()
    );
}
