//! Property test: for ANY random workload, executing through the
//! persistent engine and recovering from the log yields a database with
//! the same state digest as the live one — i.e. recovery is exact.

use proptest::prelude::*;
use tchimera_core::{attrs, Attrs, ClassDef, ClassId, Oid, Type, Value};
use tchimera_storage::{digest_database, PersistentDatabase};

#[derive(Clone, Debug)]
enum Op {
    Tick(u64),
    Create(usize),
    SetSalary(usize, i64),
    Migrate(usize, usize),
    Terminate(usize),
}

const CLASSES: [&str; 3] = ["person", "employee", "manager"];

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..4).prop_map(Op::Tick),
        (0usize..CLASSES.len()).prop_map(Op::Create),
        (0usize..8, 0i64..1000).prop_map(|(a, b)| Op::SetSalary(a, b)),
        (0usize..8, 0usize..CLASSES.len()).prop_map(|(a, b)| Op::Migrate(a, b)),
        (0usize..8).prop_map(Op::Terminate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recovery_is_exact_for_any_workload(ops in prop::collection::vec(arb_op(), 1..40), salt in 0u64..u64::MAX) {
        let path = std::env::temp_dir().join(format!(
            "tchimera-prop-{}-{salt}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let live_digest = {
            let mut pdb = PersistentDatabase::open(&path).unwrap();
            pdb.define_class(ClassDef::new("person").attr("address", Type::STRING)).unwrap();
            pdb.define_class(
                ClassDef::new("employee").isa("person").attr("salary", Type::temporal(Type::INTEGER)),
            ).unwrap();
            pdb.define_class(ClassDef::new("manager").isa("employee")).unwrap();
            let mut oids: Vec<Oid> = Vec::new();
            for op in &ops {
                match op {
                    Op::Tick(n) => {
                        let t = tchimera_core::Instant(pdb.db().now().ticks() + n);
                        pdb.advance_to(t).unwrap();
                    }
                    Op::Create(c) => {
                        let cid = ClassId::from(CLASSES[*c]);
                        let init = if *c > 0 {
                            attrs([("salary", Value::Int(100))])
                        } else {
                            Attrs::new()
                        };
                        oids.push(pdb.create_object(&cid, init).unwrap());
                    }
                    Op::SetSalary(k, v) => {
                        if let Some(&i) = oids.get(k % oids.len().max(1)) {
                            let _ = pdb.set_attr(i, &"salary".into(), Value::Int(*v));
                        }
                    }
                    Op::Migrate(k, c) => {
                        if let Some(&i) = oids.get(k % oids.len().max(1)) {
                            let cid = ClassId::from(CLASSES[*c]);
                            let init = if *c > 0 {
                                attrs([("salary", Value::Int(1))])
                            } else {
                                Attrs::new()
                            };
                            let _ = pdb.migrate(i, &cid, init);
                        }
                    }
                    Op::Terminate(k) => {
                        if let Some(&i) = oids.get(k % oids.len().max(1)) {
                            let _ = pdb.terminate_object(i);
                        }
                    }
                }
            }
            pdb.sync().unwrap();
            pdb.state_digest()
        };
        let recovered = PersistentDatabase::open(&path).unwrap();
        prop_assert_eq!(recovered.state_digest(), live_digest);
        // The recovered database also satisfies the paper's invariants.
        prop_assert!(recovered.db().check_invariants().is_empty());
        prop_assert!(digest_database(recovered.db()) == live_digest);
        std::fs::remove_file(&path).ok();
    }
}
