//! Cross-crate integration tests: the core model, the TCQL language and
//! the storage engine working together.

use tchimera_core::{
    attrs, Attrs, ClassDef, ClassId, Constraint, Database, Instant, Interval, Oid, Type, Value,
};
use tchimera_query::{Interpreter, Outcome};
use tchimera_storage::{PersistentDatabase, TemporalIndex};

/// Build the staff database used across these tests, via the public API.
fn staff_db() -> Database {
    let mut db = Database::new();
    db.define_class(
        ClassDef::new("person")
            .immutable_attr("name", Type::temporal(Type::STRING))
            .attr("address", Type::STRING),
    )
    .unwrap();
    db.define_class(
        ClassDef::new("employee")
            .isa("person")
            .attr("salary", Type::temporal(Type::INTEGER)),
    )
    .unwrap();
    db.define_class(
        ClassDef::new("manager")
            .isa("employee")
            .attr("officialcar", Type::STRING),
    )
    .unwrap();
    db.advance_to(Instant(10)).unwrap();
    for (name, salary) in [("Ann", 1000i64), ("Bob", 900), ("Cai", 1100)] {
        db.create_object(
            &ClassId::from("employee"),
            attrs([("name", Value::str(name)), ("salary", Value::Int(salary))]),
        )
        .unwrap();
    }
    db.advance_to(Instant(30)).unwrap();
    db.set_attr(Oid(0), &"salary".into(), Value::Int(1500)).unwrap();
    db.migrate(
        Oid(1),
        &ClassId::from("manager"),
        attrs([("officialcar", Value::str("Alfa 164"))]),
    )
    .unwrap();
    db.advance_to(Instant(50)).unwrap();
    db.terminate_object(Oid(2)).unwrap();
    db.advance_to(Instant(60)).unwrap();
    db
}

#[test]
fn tcql_over_api_built_database() {
    // A database built through the API is queryable through TCQL.
    let mut interp = Interpreter::with_db(staff_db());
    match interp.run("select e.name, e.salary from employee e").unwrap() {
        Outcome::Table(t) => {
            assert_eq!(t.len(), 2); // Cai is dead
            assert_eq!(t.rows[0], vec![Value::str("Ann"), Value::Int(1500)]);
        }
        other => panic!("expected table, got {other}"),
    }
    // Time travel sees the dead employee and the old salary.
    match interp
        .run("select e.name, e.salary from employee e as of 20")
        .unwrap()
    {
        Outcome::Table(t) => {
            assert_eq!(t.len(), 3);
            assert_eq!(t.rows[0][1], Value::Int(1000));
        }
        other => panic!("expected table, got {other}"),
    }
}

#[test]
fn storage_roundtrip_preserves_query_results() {
    // Replaying the same logical operations through the persistent engine
    // yields a database giving identical TCQL answers.
    let path = std::env::temp_dir().join(format!(
        "tchimera-int-roundtrip-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    {
        let mut pdb = PersistentDatabase::open(&path).unwrap();
        pdb.define_class(
            ClassDef::new("person")
                .immutable_attr("name", Type::temporal(Type::STRING))
                .attr("address", Type::STRING),
        )
        .unwrap();
        pdb.define_class(
            ClassDef::new("employee")
                .isa("person")
                .attr("salary", Type::temporal(Type::INTEGER)),
        )
        .unwrap();
        pdb.define_class(
            ClassDef::new("manager")
                .isa("employee")
                .attr("officialcar", Type::STRING),
        )
        .unwrap();
        pdb.advance_to(Instant(10)).unwrap();
        for (name, salary) in [("Ann", 1000i64), ("Bob", 900), ("Cai", 1100)] {
            pdb.create_object(
                &ClassId::from("employee"),
                attrs([("name", Value::str(name)), ("salary", Value::Int(salary))]),
            )
            .unwrap();
        }
        pdb.advance_to(Instant(30)).unwrap();
        pdb.set_attr(Oid(0), &"salary".into(), Value::Int(1500)).unwrap();
        pdb.migrate(
            Oid(1),
            &ClassId::from("manager"),
            attrs([("officialcar", Value::str("Alfa 164"))]),
        )
        .unwrap();
        pdb.advance_to(Instant(50)).unwrap();
        pdb.terminate_object(Oid(2)).unwrap();
        pdb.advance_to(Instant(60)).unwrap();
        pdb.sync().unwrap();
    }
    let recovered = PersistentDatabase::open(&path).unwrap();
    let expected = staff_db();
    assert_eq!(
        tchimera_storage::digest_database(recovered.db()),
        tchimera_storage::digest_database(&expected),
        "recovered state differs from the directly-built database"
    );
    // And TCQL sees the same rows.
    let mut a = Interpreter::with_db(recovered.db().clone());
    let mut b = Interpreter::with_db(expected);
    for q in [
        "select e, e.name, e.salary from employee e",
        "select p, class of p from person p as of 40",
        "select history of e.salary from employee e during [10, 40]",
    ] {
        let (ra, rb) = (a.run(q).unwrap(), b.run(q).unwrap());
        match (ra, rb) {
            (Outcome::Table(x), Outcome::Table(y)) => assert_eq!(x, y, "query {q}"),
            _ => panic!("expected tables"),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn temporal_index_agrees_with_model_and_query() {
    let db = staff_db();
    let idx = TemporalIndex::build(&db);
    for t in [5u64, 10, 20, 30, 40, 50, 55, 60] {
        let t = Instant(t);
        for class in ["person", "employee", "manager"] {
            let cid = ClassId::from(class);
            assert_eq!(idx.members_at(&cid, t), db.pi(&cid, t).unwrap());
        }
    }
    // Window query: everyone who ever lived in [0, 60].
    assert_eq!(
        idx.alive_during(Interval::from_ticks(0, 60)),
        vec![Oid(0), Oid(1), Oid(2)]
    );
    assert_eq!(idx.alive_during(Interval::from_ticks(51, 60)), vec![Oid(0), Oid(1)]);
}

#[test]
fn constraints_over_query_built_data() {
    let mut interp = Interpreter::new();
    interp
        .run_script(
            "define class employee (salary: temporal(integer)); \
             advance to 10; \
             create employee (salary := 100); \
             create employee (salary := 200); \
             advance to 20; \
             set #0.salary := 150; \
             set #1.salary := 120; -- a pay cut",
        )
        .unwrap();
    let violations = interp.db().check_constraint(&Constraint::NonDecreasing {
        class: ClassId::from("employee"),
        attr: "salary".into(),
    });
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].oid, Oid(1));
    assert_eq!(violations[0].at, Some(Instant(20)));
}

#[test]
fn paper_walkthrough_examples_3_to_6() {
    // One pass through every numbered example of the paper.
    let mut db = Database::new();
    db.define_class(ClassDef::new("task")).unwrap();
    db.define_class(ClassDef::new("person")).unwrap();
    db.define_class(ClassDef::new("employee").isa("person")).unwrap();
    // Example 3.1: the listed types are well-formed once `project` exists.
    db.define_class(
        ClassDef::new("project")
            .immutable_attr("name", Type::temporal(Type::STRING))
            .attr("objective", Type::STRING)
            .attr("workplan", Type::set_of(Type::object("task")))
            .attr("subproject", Type::temporal(Type::object("project")))
            .attr(
                "participants",
                Type::temporal(Type::set_of(Type::object("person"))),
            ),
    )
    .unwrap();
    for t in [
        Type::Time,
        Type::temporal(Type::INTEGER),
        Type::list_of(Type::BOOL),
        Type::temporal(Type::set_of(Type::object("project"))),
        Type::record_of([
            ("task", Type::temporal(Type::object("project"))),
            ("startbudget", Type::REAL),
            ("endbudget", Type::REAL),
        ]),
    ] {
        assert!(t.is_well_formed(), "{t} should be well-formed");
    }

    // Example 3.2 memberships.
    db.advance_to(Instant(10)).unwrap();
    let i_person = db.create_object(&ClassId::from("person"), Attrs::new()).unwrap();
    let i_emp = db.create_object(&ClassId::from("employee"), Attrs::new()).unwrap();
    let t = Instant(10);
    assert!(db.value_in_type(&Value::Int(10), &Type::INTEGER, t));
    assert!(db.value_in_type(&Value::Oid(i_emp), &Type::object("employee"), t));
    assert!(db.value_in_type(
        &Value::set([Value::Oid(i_person), Value::Oid(i_emp)]),
        &Type::set_of(Type::object("person")),
        t
    ));

    // Example 4.2: h_type / s_type.
    let cls = db.class(&ClassId::from("project")).unwrap();
    assert_eq!(
        cls.historical_type().unwrap(),
        Type::record_of([
            ("name", Type::STRING),
            ("subproject", Type::object("project")),
            ("participants", Type::set_of(Type::object("person"))),
        ])
    );
    assert_eq!(
        cls.static_type().unwrap(),
        Type::record_of([
            ("objective", Type::STRING),
            ("workplan", Type::set_of(Type::object("task"))),
        ])
    );

    // Theorem 6.1 instance: set-of(employee) ≤ set-of(person) and the
    // extension inclusion holds for a sampled member.
    let sub = Type::set_of(Type::object("employee"));
    let sup = Type::set_of(Type::object("person"));
    assert!(db.schema().is_subtype(&sub, &sup));
    let v = Value::set([Value::Oid(i_emp)]);
    assert!(db.value_in_type(&v, &sub, t));
    assert!(db.value_in_type(&v, &sup, t));
}

#[test]
fn tcql_checks_report_injected_faults() {
    let mut interp = Interpreter::with_db(staff_db());
    // Healthy first.
    assert!(matches!(
        interp.run("check consistency").unwrap(),
        Outcome::Consistency(r) if r.is_consistent()
    ));
    // Inject a fault via the fault-injection hook.
    let mut broken = interp.db().object(Oid(0)).unwrap().clone();
    broken.attrs.insert("address".into(), Value::Int(666));
    interp.db_mut().replace_object_for_test(broken);
    match interp.run("check consistency").unwrap() {
        Outcome::Consistency(r) => {
            assert!(!r.is_consistent());
            let msg = format!("{}", Outcome::Consistency(r));
            assert!(msg.contains("address"));
        }
        other => panic!("expected consistency report, got {other}"),
    }
}

#[test]
fn view_as_composes_with_queries() {
    let mut db = Database::new();
    db.define_class(ClassDef::new("person").attr("address", Type::STRING))
        .unwrap();
    db.define_class(
        ClassDef::new("tracked")
            .isa("person")
            .attr("address", Type::temporal(Type::STRING)),
    )
    .unwrap();
    db.advance_to(Instant(5)).unwrap();
    let i = db
        .create_object(&ClassId::from("tracked"), attrs([("address", Value::str("Milano"))]))
        .unwrap();
    db.advance_to(Instant(15)).unwrap();
    db.set_attr(i, &"address".into(), Value::str("Genova")).unwrap();
    // Coerced view matches the superclass structural type (Section 6.1).
    let view = db.view_as(i, &ClassId::from("person")).unwrap();
    assert_eq!(view, Value::record([("address", Value::str("Genova"))]));
    let sup_t = db.type_of(&ClassId::from("person")).unwrap();
    assert!(db.value_in_type(&view, &sup_t, db.now()));
}
