//! Governor chaos: pathological queries, adversarial parser input and
//! mid-flight cancellation hammer the query layer **concurrently with**
//! the storage-fault workload of the chaos harness. The point is
//! end-to-end robustness, not any single mechanism:
//!
//! * every pathological query terminates with a *typed* error
//!   (`BudgetExceeded` / `Cancelled`) — no panic, no hang;
//! * the storage engine keeps committing (or degrading read-only) under
//!   injected transient faults while the query side is melting down;
//! * afterwards the database is consistent (Definition 5.6), a normal
//!   query answers correctly, and the admission gauge is back to zero.

use std::path::Path;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tchimera::query::{ExecBudget, Interpreter, Outcome, QueryError};
use tchimera::storage::{PersistentDatabase, SimFs, Vfs};
use tchimera::{Database, Value};

const SEED: u64 = 0x60BE12;
const OBJECTS_PER_CLASS: usize = 220;

/// Three classes with temporal attributes and history spread over many
/// ticks: an unfiltered 3-way cross product examines
/// `OBJECTS_PER_CLASS³` bindings (≈10.6M ≫ the 1M default budget).
fn chaos_db() -> Database {
    let mut interp = Interpreter::new();
    interp
        .run_script(
            "define class a (v: temporal(integer)); \
             define class b (v: temporal(integer)); \
             define class c (v: temporal(integer)); \
             advance to 1;",
        )
        .unwrap();
    for cls in ["a", "b", "c"] {
        for i in 0..OBJECTS_PER_CLASS {
            interp
                .run(&format!("create {cls} (v := {})", i % 7))
                .unwrap();
        }
        // Spread updates over time so full-history DURING scans have
        // real event points to recheck.
        interp.run("tick 10").unwrap();
        interp.run("set #0.v := 99").unwrap();
    }
    interp.run("tick 10").unwrap();
    interp.db().clone()
}

/// The pathological load a single query-side attacker thread runs.
/// Every outcome must be a typed error or a legitimate result.
fn attack(db: Database, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut interp = Interpreter::with_db(db);
    let now = interp.db().now().ticks();

    for round in 0..8 {
        match rng.gen_range(0..4u32) {
            // Deep unfiltered cross product over full history: must trip
            // the default budget, never hang or panic.
            0 => {
                let q = format!(
                    "select x, y, z from a x, b y, c z during [0, {now}]"
                );
                match interp.run(&q) {
                    Err(QueryError::BudgetExceeded { .. })
                    | Err(QueryError::Cancelled { .. }) => {}
                    Err(QueryError::Overloaded { .. }) => {}
                    other => panic!("cross product escaped the governor: {other:?}"),
                }
            }
            // Giant DURING window with a sometime recheck.
            1 => {
                let q = format!(
                    "select x, y from a x, b y during [0, {}] \
                     where sometime(x.v = y.v)",
                    now + 1000
                );
                match interp.run(&q) {
                    Ok(_)
                    | Err(QueryError::BudgetExceeded { .. })
                    | Err(QueryError::Cancelled { .. })
                    | Err(QueryError::Overloaded { .. }) => {}
                    Err(e) => panic!("DURING recheck failed oddly: {e}"),
                }
            }
            // Adversarial parser input: nesting far past the depth
            // limit must come back as an error, not a stack overflow.
            2 => {
                let deep = format!("select x from a x where {}x.v = 1{}",
                    "(".repeat(9_000), ")".repeat(9_000));
                assert!(interp.run(&deep).is_err(), "bogus nesting accepted");
                let garbage = "select ] during [[ sometime((( from ;;";
                assert!(interp.run(garbage).is_err(), "garbage accepted");
            }
            // Mid-flight cancellation from a sibling thread, then reset.
            _ => {
                let token = interp.cancel_token();
                let canceller = std::thread::spawn(move || token.cancel());
                let q = format!("select x, y, z from a x, b y, c z during [0, {now}]");
                match interp.run(&q) {
                    Err(QueryError::Cancelled { .. })
                    | Err(QueryError::BudgetExceeded { .. })
                    | Err(QueryError::Overloaded { .. }) => {}
                    other => panic!("round {round}: expected typed error, got {other:?}"),
                }
                canceller.join().unwrap();
                interp.cancel_token().reset();
            }
        }
    }

    // The session must still serve a normal query afterwards.
    interp.cancel_token().reset();
    match interp.run("select count(x) from a x where x.v = 0") {
        Ok(Outcome::Table(t)) => match &t.rows[0][0] {
            Value::Int(n) => assert!(*n > 0, "lost rows: {n}"),
            v => panic!("expected a count, got {v:?}"),
        },
        other => panic!("attacker session wedged: {other:?}"),
    }
}

#[test]
fn pathological_queries_and_storage_faults_dont_take_the_engine_down() {
    let db = chaos_db();

    // Storage side: a persistent engine on a fault-injecting SimFs,
    // committing transactions while the query side attacks.
    let fs = SimFs::new();
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
    let mut pdb =
        PersistentDatabase::open_with(Arc::clone(&vfs), Path::new("governor_chaos.log")).unwrap();
    pdb.txn(|t| {
        t.define_class(
            tchimera::ClassDef::new("w").attr("n", tchimera::Type::temporal(tchimera::Type::INTEGER)),
        )?;
        t.advance_to(tchimera::Instant(1))?;
        Ok(())
    })
    .unwrap();

    let attackers: Vec<_> = (0..4)
        .map(|i| {
            let db = db.clone();
            std::thread::spawn(move || attack(db, SEED ^ i))
        })
        .collect();

    // Writer keeps committing under scheduled transient faults. The
    // retry budget (4 attempts) absorbs bursts of 2; occasional longer
    // bursts may surface — both are legitimate, corruption is not.
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut committed = 0usize;
    for i in 0..60 {
        if i % 9 == 4 {
            fs.fail_transient_next(rng.gen_range(1..3));
        }
        let r = pdb.txn(|t| {
            t.tick()?;
            t.create_object(
                &tchimera::ClassId::from("w"),
                tchimera::attrs([("n", Value::Int(i as i64))]),
            )?;
            Ok(())
        });
        if r.is_ok() {
            committed += 1;
        }
        if pdb.is_read_only() {
            break;
        }
    }
    assert!(committed > 0, "storage made no progress under chaos");
    assert!(pdb.db().check_database().is_consistent());

    for a in attackers {
        a.join().expect("attacker thread panicked — governor leaked a panic");
    }

    // Query side settled: consistent, correct, and the admission gauge
    // is back to zero (no leaked permits).
    assert!(db.check_database().is_consistent());
    assert_eq!(db.admission().active(), 0, "admission permits leaked");
    let mut interp = Interpreter::with_db(db);
    match interp.run("select count(x) from b x").unwrap() {
        Outcome::Table(t) => {
            assert_eq!(t.rows[0][0], Value::Int(OBJECTS_PER_CLASS as i64));
        }
        o => panic!("expected a count, got {o:?}"),
    }
}

#[test]
fn overload_shedding_is_deterministic_under_a_cap_of_one() {
    let db = chaos_db();
    db.admission().set_cap(1);
    let holder = db.clone();
    let _permit = holder.admission().try_enter().expect("first permit");

    let mut interp = Interpreter::with_db(db.clone());
    match interp.run("select count(x) from a x") {
        Err(QueryError::Overloaded { active, cap }) => {
            assert_eq!((active, cap), (1, 1));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    drop(_permit);
    assert!(interp.run("select count(x) from a x").is_ok());
    assert_eq!(db.admission().active(), 0);
}

#[test]
fn budget_errors_carry_partial_progress() {
    let db = chaos_db();
    let mut interp = Interpreter::with_db(db);
    interp.set_budget(ExecBudget {
        max_bindings: 1000,
        ..ExecBudget::default()
    });
    let now = interp.db().now().ticks();
    match interp.run(&format!("select x, y, z from a x, b y, c z during [0, {now}]")) {
        Err(QueryError::BudgetExceeded {
            resource,
            spent,
            limit,
            progress,
        }) => {
            assert_eq!(limit, 1000);
            assert!(spent >= limit, "{spent} < {limit}");
            assert!(progress.bindings > 0, "no progress recorded");
            let _ = resource;
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}
