//! Fault-tolerance tour: atomic transactions, fault classification with
//! bounded retry, and the read-only degradation circuit breaker.
//!
//! Run with `cargo run --example fault_tolerance`.
//!
//! The contract (DESIGN.md §10): the engine degrades, it doesn't
//! corrupt. Mutations grouped in `txn` commit as one log record or not
//! at all; transient I/O blips are retried deterministically; repeated
//! surfaced failures flip the engine read-only until a probe finds the
//! disk healthy again.

use std::path::Path;
use std::sync::Arc;

use tchimera::storage::{
    BreakerState, EngineConfig, EngineError, PersistentDatabase, SimFs, TearMode, Vfs,
};
use tchimera::{attrs, ClassDef, Type, Value};

fn main() {
    // A simulated disk so the faults below are scripted, not hoped for.
    let fs = SimFs::new();
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
    let path = Path::new("tour.log");
    let mut pdb = PersistentDatabase::open_with_config(
        Arc::clone(&vfs),
        path,
        EngineConfig {
            breaker_threshold: 2,
            ..EngineConfig::default()
        },
    )
    .unwrap();

    // ── 1. Atomic transactions ──────────────────────────────────────
    // Two people who are each other's friend: neither half may ever be
    // observable alone, so both creates and the back-reference commit
    // as ONE log record.
    let (ann, bob) = pdb
        .txn(|t| {
            t.define_class(
                ClassDef::new("person")
                    .attr("name", Type::STRING)
                    .attr("friend", Type::temporal(Type::object("person"))),
            )?;
            t.tick()?;
            let ann = t.create_object(
                &"person".into(),
                attrs([("name", Value::str("Ann")), ("friend", Value::Null)]),
            )?;
            let bob = t.create_object(
                &"person".into(),
                attrs([("name", Value::str("Bob")), ("friend", Value::Oid(ann))]),
            )?;
            t.set_attr(ann, &"friend".into(), Value::Oid(bob))?;
            Ok((ann, bob))
        })
        .unwrap();
    println!("committed the mutual pair as {} log record(s)", pdb.op_count());
    assert_eq!(
        pdb.db().attr_now(ann, &"friend".into()).unwrap(),
        Value::Oid(bob)
    );

    // A transaction that fails mid-way leaves no trace at all.
    let before = pdb.state_digest();
    let rejected = pdb.txn(|t| {
        t.tick()?;
        t.create_object(&"person".into(), attrs([("name", Value::Int(7))]))?; // type error
        Ok(())
    });
    assert!(rejected.is_err());
    assert_eq!(pdb.state_digest(), before, "rollback is total");
    println!("mid-transaction type error rolled back cleanly");

    // ── 2. Transient faults are absorbed by deterministic retry ─────
    fs.fail_transient_next(2); // the next two writes return Interrupted
    pdb.txn(|t| {
        t.tick()?;
        t.set_attr(ann, &"friend".into(), Value::Null)
    })
    .unwrap();
    let snap = tchimera::obs::snapshot();
    println!(
        "transient blip absorbed: {} retries, {} exhausted",
        snap.counter("storage.retry.attempts").unwrap_or(0),
        snap.counter("storage.retry.exhausted").unwrap_or(0),
    );

    // ── 3. Permanent faults trip the breaker: degrade, don't corrupt ─
    pdb.sync().unwrap();
    let boundary = pdb.state_digest();
    fs.fail_after(Some(0)); // the disk dies
    for _ in 0..2 {
        assert!(matches!(pdb.tick(), Err(EngineError::Write { .. })));
    }
    assert_eq!(pdb.breaker_state(), BreakerState::Open);
    assert!(matches!(pdb.tick(), Err(EngineError::ReadOnly { .. })));
    assert_eq!(pdb.state_digest(), boundary, "reads still serve the boundary");
    println!(
        "breaker open after 2 surfaced faults (gauge storage.breaker.state = {})",
        tchimera::obs::snapshot()
            .gauge("storage.breaker.state")
            .unwrap()
    );

    // ── 4. The disk heals; a probe restores service ─────────────────
    fs.fail_after(None);
    assert!(pdb.try_reset());
    pdb.tick().unwrap();
    pdb.sync().unwrap();
    println!("probe succeeded, writes restored");

    // ── 5. And a crash still recovers to the committed boundary ─────
    fs.crash(TearMode::KeepHalf);
    let recovered = PersistentDatabase::open_with(vfs, path).unwrap();
    assert!(recovered.db().check_database().is_consistent());
    println!(
        "after crash: {} ops recovered, consistency clean",
        recovered.recovered_ops()
    );
}
