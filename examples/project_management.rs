//! The paper's running example, executed end to end: the `project` class
//! of Example 4.1, the object `i1` of Example 5.1, the derived states of
//! Example 5.2, the consistency conditions of Example 5.3 and the equality
//! notions of Example 5.4.
//!
//! Run with `cargo run --example project_management`.

use tchimera_core::{attrs, Attrs, ClassDef, ClassId, Database, Instant, Type, Value};

fn main() {
    let mut db = Database::new();

    // Supporting classes.
    db.define_class(ClassDef::new("task")).unwrap();
    db.define_class(ClassDef::new("person")).unwrap();

    // Example 4.1 — the class `project`:
    //   name:         temporal(string), immutable during the lifetime
    //   objective:    string            (static: changes not recorded)
    //   workplan:     set-of(task)      (static)
    //   subproject:   temporal(project)
    //   participants: temporal(set-of(person))
    //   method add-participant: person → project
    //   c-attribute average-participants: integer  (⇒ the class is static)
    db.define_class(
        ClassDef::new("project")
            .immutable_attr("name", Type::temporal(Type::STRING))
            .attr("objective", Type::STRING)
            .attr("workplan", Type::set_of(Type::object("task")))
            .attr("subproject", Type::temporal(Type::object("project")))
            .attr(
                "participants",
                Type::temporal(Type::set_of(Type::object("person"))),
            )
            .method(
                "add-participant",
                [Type::object("person")],
                Type::object("project"),
            )
            .c_attr("average-participants", Type::INTEGER),
    )
    .unwrap();

    let project = ClassId::from("project");
    let cls = db.class(&project).unwrap();
    println!("class {} is {:?} (its only c-attribute is static)", cls.id, cls.kind);
    // Example 4.2 — the three types associated with the class.
    println!("type(project)   = {}", cls.structural_type());
    println!("h_type(project) = {}", cls.historical_type().unwrap());
    println!("s_type(project) = {}\n", cls.static_type().unwrap());

    // Populate the supporting objects used by Example 5.1 (i2, i3, i4,
    // i7, i8, i9 — created earlier so the reference intervals type-check,
    // cf. Example 5.3's conditions).
    db.advance_to(Instant(10)).unwrap();
    let i7 = db.create_object(&ClassId::from("task"), Attrs::new()).unwrap();
    let i2 = db.create_object(&ClassId::from("person"), Attrs::new()).unwrap();
    let i3 = db.create_object(&ClassId::from("person"), Attrs::new()).unwrap();
    let i8 = db.create_object(&ClassId::from("person"), Attrs::new()).unwrap();
    let i4 = db
        .create_object(&project, attrs([("name", Value::str("SUB-4"))]))
        .unwrap();
    let i9 = db
        .create_object(&project, attrs([("name", Value::str("SUB-9"))]))
        .unwrap();

    // Example 5.1 — the project IDEA, created at t=20.
    db.advance_to(Instant(20)).unwrap();
    let i1 = db
        .create_object(
            &project,
            attrs([
                ("name", Value::str("IDEA")),
                ("objective", Value::str("Implementation")),
                ("workplan", Value::set([Value::Oid(i7)])),
                ("subproject", Value::Oid(i4)),
                ("participants", Value::set([Value::Oid(i2), Value::Oid(i3)])),
            ]),
        )
        .unwrap();

    // History of Example 5.1: subproject switches i4 → i9 at 46,
    // participants gain i8 at 81.
    db.advance_to(Instant(46)).unwrap();
    db.set_attr(i1, &"subproject".into(), Value::Oid(i9)).unwrap();
    db.advance_to(Instant(81)).unwrap();
    db.set_attr(
        i1,
        &"participants".into(),
        Value::set([Value::Oid(i2), Value::Oid(i3), Value::Oid(i8)]),
    )
    .unwrap();
    db.advance_to(Instant(100)).unwrap();

    let o = db.object(i1).unwrap();
    println!("object {} lifespan {}", o.oid, o.lifespan);
    for (name, v) in &o.attrs {
        println!("  {name} = {v}");
    }
    println!("  class-history = {:?}\n", o.class_history);

    // Example 5.2 — derived states.
    println!("s_state(i1)     = {}", db.s_state(i1).unwrap());
    println!("h_state(i1, 50) = {}", db.h_state(i1, Instant(50)).unwrap());
    // The snapshot at now merges both; in the past it is undefined
    // because i1 has static attributes (Section 5.3).
    println!("snapshot(i1, now) = {}", db.snapshot(i1, db.now()).unwrap());
    println!(
        "snapshot(i1, 50) is undefined: {}\n",
        db.snapshot(i1, Instant(50)).unwrap_err()
    );

    // Example 5.3 — the object is a consistent instance of its class.
    let report = db.check_object(i1).unwrap();
    assert!(report.is_consistent());
    println!("i1 is a consistent instance of `project` (Definition 5.5)");
    assert!(db.check_database().is_consistent());
    println!("the database is a consistent set of objects (Definition 5.6)\n");

    // The immutable attribute rejects modification.
    db.tick();
    let err = db.set_attr(i1, &"name".into(), Value::str("IDEA-2")).unwrap_err();
    println!("renaming the project fails: {err}\n");

    // Example 5.4 — equality notions: a clone of IDEA's *current* state
    // with a different history is instantaneous- but not value-equal.
    let twin = db
        .create_object(
            &project,
            attrs([
                ("name", Value::str("IDEA")),
                ("objective", Value::str("Implementation")),
                ("workplan", Value::set([Value::Oid(i7)])),
                ("subproject", Value::Oid(i9)),
                (
                    "participants",
                    Value::set([Value::Oid(i2), Value::Oid(i3), Value::Oid(i8)]),
                ),
            ]),
        )
        .unwrap();
    println!("created twin {twin} with IDEA's current state but no history");
    println!("value equal?         {}", db.eq_value(i1, twin).unwrap());
    println!(
        "instantaneous equal? {:?}",
        db.eq_instantaneous(i1, twin).unwrap()
    );
    println!("weakly equal?        {:?}", db.eq_weak(i1, twin).unwrap());
    println!(
        "strongest equality:  {:?}",
        db.strongest_equality(i1, twin).unwrap()
    );

    // The c-attribute of Example 4.1.
    db.set_c_attr(&project, &"average-participants".into(), Value::Int(20))
        .unwrap();
    println!(
        "\nc-attribute average-participants = {}",
        db.c_attr(&project, &"average-participants".into()).unwrap()
    );
}
