//! Observability tour: metrics, latency histograms and structured span
//! tracing across the query, core and storage layers.
//!
//! Run with `cargo run --example observability`.
//!
//! The contract (DESIGN.md §9): every subsystem records counters and
//! latency histograms unconditionally through cheap relaxed atomics, and
//! emits structured span events only while a subscriber is installed.
//! `Database::metrics()` snapshots everything; `obs::take_trace()` drains
//! the ring buffer.

use std::path::Path;
use std::sync::Arc;

use tchimera::obs;
use tchimera::obs::EventKind;
use tchimera::query::Interpreter;
use tchimera::storage::{PersistentDatabase, SimFs, TearMode, Vfs};
use tchimera::{attrs, ClassDef, ClassId, Instant, Type, Value};

const SCRIPT: &str = "
    define class employee (
        name: temporal(string) immutable,
        salary: temporal(integer)
    );
    advance to 10;
    create employee (name := 'Ann', salary := 1000);
    create employee (name := 'Bob', salary := 900);
    advance to 30;
    set #0.salary := 1500;
    advance to 50;
";

fn main() {
    // 1. Install a trace subscriber *before* the workload. Without one,
    //    spans still time themselves into histograms but no events are
    //    formatted or stored — that is the zero-cost default.
    obs::install_ring_buffer(256);

    // 2. Drive a TCQL session. Every `select` runs under a `query.eval`
    //    span and ticks the `query.eval.*` counters.
    let mut interp = Interpreter::new();
    interp.run_script(SCRIPT).expect("setup script");
    for q in [
        "select e.name, e.salary from employee e",
        "select e.name from employee e where sometime(e.salary = 900)",
        "select history of e.salary from employee e during [20, 40]",
    ] {
        interp.run(q).expect("query");
    }

    // 3. Consistency checking runs under `core.check_*` spans and reports
    //    how much work the (possibly parallel) pass did.
    assert!(interp.db().check_database().is_consistent());

    // 4. Persistence: the write-ahead log, checkpoints and the recovery
    //    ladder all trace themselves. Build a small database on the
    //    simulated filesystem, checkpoint, crash, and reopen — the reopen
    //    emits exactly one `storage.recovery.rung` event.
    let fs = SimFs::new();
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
    let path = Path::new("example.db");
    {
        let mut pdb = PersistentDatabase::open_with(Arc::clone(&vfs), path).unwrap();
        pdb.define_class(
            ClassDef::new("employee").attr("salary", Type::temporal(Type::INTEGER)),
        )
        .unwrap();
        pdb.advance_to(Instant(10)).unwrap();
        pdb.create_object(&ClassId::from("employee"), attrs([("salary", Value::Int(1000))]))
            .unwrap();
        pdb.checkpoint().unwrap();
        pdb.sync().unwrap();
    }
    fs.crash(TearMode::DropAll);
    let pdb = PersistentDatabase::open_with(vfs, path).unwrap();

    // 5. Drain the trace: a structured record of everything above.
    let events = obs::take_trace();
    println!("--- trace ring buffer: {} events ---", events.len());
    for e in &events {
        let indent = "  ".repeat(e.depth);
        match e.kind {
            EventKind::Enter => println!("{indent}-> {} {}", e.name, e.fields),
            EventKind::Exit => println!(
                "{indent}<- {} ({} ns)",
                e.name,
                e.elapsed_ns.unwrap_or(0)
            ),
            EventKind::Instant => println!("{indent} * {} {}", e.name, e.fields),
        }
    }
    let rungs = events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name == "storage.recovery.rung")
        .count();
    println!("recovery rung events: {rungs} (one per open)");

    // 6. The metrics snapshot: every counter, gauge and histogram from
    //    all three layers, by documented name (DESIGN.md §9).
    let snap = pdb.db().metrics();
    println!("\n--- metrics snapshot: {} instruments ---", snap.len());
    for name in [
        "query.eval.rows",
        "query.eval.during",
        "core.consistency.objects_checked",
        "core.extent.at_replay",
        "storage.log.appends",
        "storage.recovery.rung",
        "storage.simfs.crashes",
    ] {
        println!("{name} = {}", snap.counter(name).unwrap());
    }
    if let Some(h) = snap.histogram("query.eval") {
        println!(
            "query.eval latency: count={} mean={:.0} ns max={} ns",
            h.count,
            h.mean(),
            h.max
        );
    }

    // 7. The whole snapshot serialises to JSON for scraping.
    let json = snap.to_json();
    println!("\nJSON snapshot is {} bytes; starts: {}…", json.len(), &json[..60]);
}
