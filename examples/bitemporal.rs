//! Bitemporal queries: valid time × transaction time.
//!
//! The paper's model records **valid time** (Table 1: one linear
//! valid-time dimension) and notes it "can be easily extended to
//! different notions of time". The storage engine's operation log is
//! precisely the **transaction-time** axis — the ordered record of what
//! was stored when — so combining `state_at_op` (transaction-time travel)
//! with the model's own `attr_at` (valid-time travel) yields bitemporal
//! reads: *"what did we believe at transaction k the value was at valid
//! instant t?"*
//!
//! The classic scenario: a salary is recorded late and the record
//! *retroactively* corrects our knowledge of the past — valid-time
//! history changes across transactions, while each transaction's view is
//! immutable.
//!
//! Run with `cargo run --example bitemporal`.

use tchimera_core::{attrs, ClassDef, ClassId, Instant, TemporalValue, Type, Value};
use tchimera_storage::PersistentDatabase;

fn main() {
    let log = std::env::temp_dir().join(format!("tchimera-bitemporal-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log);
    let mut db = PersistentDatabase::open(&log).expect("open");

    db.define_class(
        ClassDef::new("employee").attr("salary", Type::temporal(Type::INTEGER)),
    )
    .unwrap();

    // Transaction 2-3 (t=10): Ann hired at salary 1000.
    db.advance_to(Instant(10)).unwrap();
    let ann = db
        .create_object(&ClassId::from("employee"), attrs([("salary", Value::Int(1000))]))
        .unwrap();

    // Transaction 4-5 (t=30): a raise is recorded *normally*.
    db.advance_to(Instant(30)).unwrap();
    db.set_attr(ann, &"salary".into(), Value::Int(1200)).unwrap();

    // Transaction 6-7 (t=50): HR discovers the raise had been effective
    // since t=20 and loads the corrected history wholesale (a bulk load
    // through an explicit temporal value — the only way to touch the
    // past, and it is itself a logged transaction).
    db.advance_to(Instant(50)).unwrap();
    let corrected = TemporalValue::from_pairs([
        (tchimera_core::Interval::from_ticks(10, 19), Value::Int(1000)),
        (tchimera_core::Interval::from_ticks(20, 49), Value::Int(1200)),
    ])
    .unwrap();
    // Terminate the stale record and recreate with the corrected history
    // (oid changes; in a production system a dedicated correction op
    // would keep it — the log still ties both to the same real entity).
    db.terminate_object(ann).unwrap();
    let ann2 = db
        .create_object(
            &ClassId::from("employee"),
            attrs([("salary", Value::Temporal(corrected))]),
        )
        .unwrap();
    db.sync().unwrap();

    println!("transaction log holds {} operations\n", db.op_count());
    println!("valid t=25 salary, as believed at each transaction:");
    for k in 0..=db.op_count() {
        let past = db.state_at_op(k).unwrap();
        // The corrected record (ann2) supersedes the stale one once it
        // exists in that transaction's view.
        let believed = past
            .object(ann2)
            .ok()
            .map(|_| past.attr_at(ann2, &"salary".into(), Instant(25)).unwrap())
            .or_else(|| {
                past.object(ann)
                    .ok()
                    .map(|_| past.attr_at(ann, &"salary".into(), Instant(25)).unwrap())
            })
            .filter(|v| !v.is_null());
        match believed {
            Some(v) => println!("  after tx {k}: salary(valid 25) = {v}"),
            None => println!("  after tx {k}: unknown (not yet recorded)"),
        }
    }

    // The final belief: the correction is visible at valid time 25…
    assert_eq!(
        db.db().attr_at(ann2, &"salary".into(), Instant(25)).unwrap(),
        Value::Int(1200)
    );
    // …while the belief *at transaction 5* (before the correction) was
    // still 1000.
    let tx5 = db.state_at_op(5).unwrap();
    assert_eq!(
        tx5.attr_at(ann, &"salary".into(), Instant(25)).unwrap(),
        Value::Int(1000)
    );
    println!("\nbitemporal read: tx5 believed 1000; head believes 1200 — both reproducible");
    std::fs::remove_file(&log).ok();
}
