//! Object migration (Section 5.2 of the paper): an employee is promoted
//! to manager, demoted back, fired and rehired — exercising attribute
//! acquisition/loss, non-contiguous class memberships, the substitutability
//! coercion of Section 6.1, and durable storage with crash recovery.
//!
//! Run with `cargo run --example employee_migration`.

use tchimera_core::{attrs, Attrs, ClassId, Database, Instant, Type, Value};
use tchimera_storage::PersistentDatabase;

fn schema_script(db: &mut PersistentDatabase) {
    use tchimera_core::ClassDef;
    db.define_class(
        ClassDef::new("person")
            .immutable_attr("name", Type::temporal(Type::STRING))
            .attr("address", Type::STRING),
    )
    .unwrap();
    db.define_class(
        ClassDef::new("employee")
            .isa("person")
            .attr("salary", Type::temporal(Type::INTEGER)),
    )
    .unwrap();
    db.define_class(
        ClassDef::new("manager")
            .isa("employee")
            .attr("officialcar", Type::STRING)
            .attr(
                "dependents",
                Type::temporal(Type::set_of(Type::object("employee"))),
            ),
    )
    .unwrap();
}

fn main() {
    let log_path = std::env::temp_dir().join(format!(
        "tchimera-migration-example-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&log_path);

    // Every mutation below is write-ahead logged.
    let mut db = PersistentDatabase::open(&log_path).expect("open log");
    schema_script(&mut db);

    let employee = ClassId::from("employee");
    let manager = ClassId::from("manager");
    let person = ClassId::from("person");

    // t=10: Ann is hired.
    db.advance_to(Instant(10)).unwrap();
    let ann = db
        .create_object(
            &employee,
            attrs([("name", Value::str("Ann")), ("salary", Value::Int(1000))]),
        )
        .unwrap();
    println!("t=10  hired Ann as employee ({ann})");

    // t=30: promoted to manager — gains officialcar (static) and
    // dependents (temporal). "The promotion of an employee to the manager
    // status has the effect of adding the attributes dependents and
    // officialcar" (Section 5.2).
    db.advance_to(Instant(30)).unwrap();
    db.migrate(
        ann,
        &manager,
        attrs([
            ("officialcar", Value::str("Alfa 164")),
            ("dependents", Value::set([])),
        ]),
    )
    .unwrap();
    db.set_attr(ann, &"salary".into(), Value::Int(1500)).unwrap();
    println!("t=30  promoted to manager (+officialcar, +dependents)");

    // Substitutability (Section 6.1): a manager can stand wherever an
    // employee is expected; the view projects manager-only attributes away.
    let as_employee = db.db().view_as(ann, &employee).unwrap();
    println!("      viewed as employee: {as_employee}");

    // t=60: demoted — "that means the loss of the official car and of the
    // dependents". Static officialcar vanishes; temporal dependents keeps
    // its closed history inside the object.
    db.advance_to(Instant(60)).unwrap();
    db.migrate(ann, &employee, Attrs::new()).unwrap();
    println!("t=60  demoted back to employee");
    let o = db.db().object(ann).unwrap();
    println!(
        "      officialcar present? {}   dependents history kept? {}",
        o.attr(&"officialcar".into()).is_some(),
        o.attr(&"dependents".into()).is_some(),
    );

    // t=80: fired — but "he remains instance of the generic class person
    // … till the end of its lifetime" (Section 5.1).
    db.advance_to(Instant(80)).unwrap();
    db.migrate(ann, &person, Attrs::new()).unwrap();
    println!("t=80  fired (migrated up to person)");

    // t=100: rehired. Memberships of `employee` become non-contiguous.
    db.advance_to(Instant(100)).unwrap();
    db.migrate(ann, &employee, attrs([("salary", Value::Int(1100))]))
        .unwrap();
    db.advance_to(Instant(120)).unwrap();
    println!("t=100 rehired as employee");

    // The paper's c_lifespan function (Table 3's m_lifespan).
    for class in ["person", "employee", "manager"] {
        let m = db.db().c_lifespan(ann, &ClassId::from(class)).unwrap();
        println!("      c_lifespan(ann, {class}) = {m}");
    }
    // The recorded class history.
    println!(
        "      class-history = {:?}",
        db.db().object(ann).unwrap().class_history
    );
    // Salary across both employments, bridging the gap.
    for t in [20u64, 45, 70, 90, 110] {
        println!(
            "      salary at t={t}: {}",
            db.db().attr_at(ann, &"salary".into(), Instant(t)).unwrap()
        );
    }

    // The paper's invariants hold throughout.
    assert!(db.db().check_invariants().is_empty());
    assert!(db.db().check_database().is_consistent());

    // Durability: drop the handle, reopen, verify the recovered state is
    // bit-for-bit identical (state digest over clock, classes, extents,
    // objects).
    db.sync().unwrap();
    let digest = db.state_digest();
    let ops_written = db.recovered_ops();
    drop(db);
    let recovered = PersistentDatabase::open(&log_path).expect("recover");
    assert_eq!(recovered.state_digest(), digest);
    println!(
        "\nrecovered {} ops from the log; state digest matches ({:#018x})",
        recovered.recovered_ops(),
        digest
    );
    let _ = ops_written;

    // Compare with a fresh in-memory database to show both front ends
    // agree.
    let fresh: &Database = recovered.db();
    assert_eq!(
        fresh.attr_at(ann, &"salary".into(), Instant(45)).unwrap(),
        Value::Int(1500)
    );
    std::fs::remove_file(&log_path).ok();
    println!("done");
}
