//! Quickstart: define a schema, create objects, record history, query it.
//!
//! Run with `cargo run --example quickstart`.

use tchimera_core::{attrs, ClassDef, ClassId, Database, Instant, Type, Value};

fn main() {
    // A database starts with an empty schema and the clock at 0.
    let mut db = Database::new();

    // 1. Define classes. Attribute domains are T_Chimera types: a
    //    `temporal(T)` attribute records its full history; a plain `T`
    //    attribute keeps only the current value; `immutable` attributes
    //    reject updates.
    db.define_class(
        ClassDef::new("person")
            .immutable_attr("name", Type::temporal(Type::STRING))
            .attr("address", Type::STRING),
    )
    .expect("define person");
    db.define_class(
        ClassDef::new("employee")
            .isa("person")
            .attr("salary", Type::temporal(Type::INTEGER)),
    )
    .expect("define employee");

    // 2. Create an object at t = 10.
    db.advance_to(Instant(10)).unwrap();
    let bob = db
        .create_object(
            &ClassId::from("employee"),
            attrs([
                ("name", Value::str("Bob")),
                ("address", Value::str("Milano")),
                ("salary", Value::Int(1000)),
            ]),
        )
        .expect("create Bob");
    println!("created {bob} at t={}", db.now());

    // 3. Update attributes over time. Temporal updates extend the
    //    history; static updates overwrite.
    db.advance_to(Instant(20)).unwrap();
    db.set_attr(bob, &"salary".into(), Value::Int(1200)).unwrap();
    db.set_attr(bob, &"address".into(), Value::str("Genova")).unwrap();
    db.advance_to(Instant(30)).unwrap();
    db.set_attr(bob, &"salary".into(), Value::Int(1500)).unwrap();

    // 4. Time-travel reads.
    for t in [10u64, 15, 20, 25, 30] {
        let salary = db.attr_at(bob, &"salary".into(), Instant(t)).unwrap();
        println!("salary at t={t}: {salary}");
    }
    // The full history as stored: coalesced ⟨interval, value⟩ runs.
    let history = db.object(bob).unwrap().attr(&"salary".into()).unwrap();
    println!("salary history: {history}");
    // The static attribute's past is gone — that is the point of
    // non-temporal attributes (Section 1.1 of the paper).
    println!(
        "address at t=10 reads the current value: {}",
        db.attr_at(bob, &"address".into(), Instant(10)).unwrap()
    );

    // 5. The paper's model functions (Table 3).
    println!("π(employee, 25) = {:?}", db.pi(&ClassId::from("employee"), Instant(25)).unwrap());
    println!("o_lifespan({bob}) = {}", db.o_lifespan(bob).unwrap());
    println!("h_state({bob}, 25) = {}", db.h_state(bob, Instant(25)).unwrap());
    println!("s_state({bob}) = {}", db.s_state(bob).unwrap());
    println!("snapshot({bob}, now) = {}", db.snapshot(bob, db.now()).unwrap());

    // 6. Consistency and invariants (Definitions 5.5/5.6, Invariants
    //    5.1–6.2) hold by construction.
    assert!(db.check_database().is_consistent());
    assert!(db.check_invariants().is_empty());
    println!("database is consistent; all paper invariants hold");
}
