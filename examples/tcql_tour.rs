//! A tour of TCQL, the temporal query/DDL/DML language: the whole
//! employee scenario driven through the interpreter, including
//! time-travel (`AS OF`), window (`DURING`), temporal predicates
//! (`SOMETIME`/`ALWAYS`/`AT`), and the `CHECK` statements.
//!
//! Run with `cargo run --example tcql_tour`.

use tchimera_query::{Interpreter, Outcome};

const SCRIPT: &str = "
    -- Schema: the staff hierarchy.
    define class person (
        name: temporal(string) immutable,
        address: string
    );
    define class employee under person (
        salary: temporal(integer),
        boss: temporal(employee)
    ) c-attributes (
        headcount: temporal(integer)
    );
    define class manager under employee (
        officialcar: string
    );

    -- Build some history.
    advance to 10;
    create employee (name := 'Ann', address := 'Milano', salary := 1000);
    create employee (name := 'Bob', address := 'Genova', salary := 900);
    set class attribute employee.headcount := 2;

    advance to 30;
    set #0.salary := 1500;
    migrate #1 to manager (officialcar := 'Alfa 164');

    advance to 50;
    set #1.salary := 2000;
    set #0.boss := #1;

    advance to 60;
";

const QUERIES: &[&str] = &[
    // Current state.
    "select e, e.name, e.salary from employee e",
    // Filtered.
    "select e.name from employee e where e.salary >= 1500",
    // Time travel: before the raises and the promotion.
    "select e.name, e.salary, class of e from employee e as of 20",
    // Temporal predicates.
    "select e.name from employee e where sometime(e.salary = 900)",
    "select e.name from employee e where always(e.salary >= 1000)",
    "select e.name from employee e where e.salary at 20 = 1000",
    // Histories, restricted to a window.
    "select e.name, history of e.salary from employee e during [25, 55]",
    // Membership over time.
    "select e.name from employee e where e in manager",
    // Projections using the paper's model functions.
    "select snapshot of e from employee e where e.name = 'Ann'",
    "select lifespan of e, class of e from person e",
    // Joins: multiple range variables, bare-variable equality.
    "select e.name, m.name from employee e, employee m where e.boss = m",
    "select count(e) from employee e, employee m",
    // Aggregates.
    "select count(e) from employee e",
    "select count(e) from employee e as of 20",
    // Equality notions (Definitions 5.7-5.10).
    "compare #0 #1",
    "compare #0 #0",
    // Temporal integrity constraints (Section 7 future work).
    "check constraint non-decreasing employee.salary",
    "check constraint range employee.salary [500, 5000] always",
    // Introspection and checks.
    "show class manager",
    "check consistency",
    "check invariants",
];

fn main() {
    let mut interp = Interpreter::new();
    interp.run_script(SCRIPT).expect("setup script");

    for q in QUERIES {
        println!("tcql> {}", q.trim());
        match interp.run(q) {
            Ok(Outcome::Table(t)) => println!("{t}\n"),
            Ok(o) => println!("{o}\n"),
            Err(e) => println!("error: {e}\n"),
        }
    }

    // Static typing in action: these are rejected *before* execution.
    for bad in [
        "select e.ghost from employee e",
        "select e from employee e where e.salary = 'many'",
        "select history of e.address from employee e",
        "select snapshot of e from employee e as of 20",
    ] {
        let err = interp.run(bad).unwrap_err();
        println!("rejected: {bad}\n      └─ {err}");
    }
}
